"""Ablation A2: design choices inside Algorithm Polar_Grid.

Two ambiguities in the paper get measured here:

* **Representative rule** — III-B says "closest to the center on the
  inner arc of the segment" (our default: nearest to the inner-arc
  midpoint) while the III-E proof says "least-radius point". The
  anchor rule is what reproduces Table I's Core column; the min-radius
  rule costs measurably more delay. DESIGN.md documents the choice.
* **Occupancy rule** — property 3 vs the relaxed connected rule for
  off-centre sources (Section IV-C).
"""

import pytest

from benchmarks.conftest import current_scale
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import rectangle_points, unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()
N = 10_000


@pytest.mark.parametrize("rule", ["inner-anchor", "min-radius"])
def test_representative_rule_build(benchmark, rule):
    points = unit_disk(N, seed=20)
    result = benchmark(
        build_polar_grid_tree, points, 0, 6, representative_rule=rule
    )
    result.tree.validate(max_out_degree=6)
    benchmark.extra_info.update(
        rule=rule, radius=round(result.radius, 4), core=round(result.core_delay, 4)
    )


def test_representative_rule_quality_gap():
    """The inner-anchor rule gives a measurably shorter core (the gap
    that separated our first implementation from Table I)."""
    anchor, minrad = [], []
    for seed in range(8):
        points = unit_disk(N, seed=seed + 30)
        anchor.append(
            build_polar_grid_tree(
                points, 0, 6, representative_rule="inner-anchor"
            ).radius
        )
        minrad.append(
            build_polar_grid_tree(
                points, 0, 6, representative_rule="min-radius"
            ).radius
        )
    mean_anchor = sum(anchor) / len(anchor)
    mean_minrad = sum(minrad) / len(minrad)
    assert mean_anchor < mean_minrad


@pytest.mark.parametrize("occupancy", ["full", "connected"])
def test_occupancy_rule_corner_source(benchmark, occupancy):
    points = rectangle_points(
        N, lower=(0, 0), upper=(2, 1), source=(0.02, 0.02), seed=21
    )
    result = benchmark(
        build_polar_grid_tree,
        points,
        0,
        6,
        occupancy=occupancy,
        fit_annulus=(occupancy == "connected"),
    )
    result.tree.validate(max_out_degree=6)
    benchmark.extra_info.update(
        occupancy=occupancy,
        rings=result.rings,
        radius=round(result.radius, 4),
    )


def test_connected_rule_wins_for_corner_sources():
    points = rectangle_points(
        N, lower=(0, 0), upper=(2, 1), source=(0.02, 0.02), seed=22
    )
    strict = build_polar_grid_tree(points, 0, 6)
    relaxed = build_polar_grid_tree(
        points, 0, 6, occupancy="connected", fit_annulus=True
    )
    assert relaxed.rings > strict.rings
    assert relaxed.radius < strict.radius * 0.95


def test_grid_depth_heuristic_is_optimal(benchmark):
    """Sweeping k around the automatic choice: delay improves
    monotonically with depth right up to the occupancy wall, so 'largest
    feasible k' has zero regret."""
    from repro.analysis.sensitivity import sweep_grid_depth

    sweep = benchmark.pedantic(
        sweep_grid_depth,
        kwargs=dict(n=N, span=3, trials=3, seed=24),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        auto_k=sweep.auto_k,
        delays={
            k: (None if d is None else round(d, 4))
            for k, d in zip(sweep.depths, sweep.delays)
        },
        regret=round(sweep.auto_choice_regret(), 5),
    )
    assert sweep.best_depth() == sweep.auto_k
    assert sweep.auto_choice_regret() == 0.0


def test_fit_annulus_neutral_for_centered_disks():
    """On the paper's own workload the annulus fit changes nothing
    substantial (r_min ~ 0)."""
    points = unit_disk(N, seed=23)
    plain = build_polar_grid_tree(points, 0, 6)
    fitted = build_polar_grid_tree(points, 0, 6, fit_annulus=True)
    assert fitted.radius == pytest.approx(plain.radius, rel=0.05)
