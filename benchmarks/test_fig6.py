"""Benchmark: Figure 6 — average ring count k vs n.

The paper reads the near-straight line on the log-n axis as logarithmic
growth, consistent with eq. (5): ``k >= (1/2) log2 n`` with high
probability. We assert the slope: about one extra ring per doubling-of-
area decade, i.e. k grows ~ log2(n)/2 .. log2(n).
"""

import math

import pytest

from benchmarks.conftest import current_scale
from repro.core.bounds import rings_lower_bound
from repro.experiments.figures import figure6, sweep

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.fixture(scope="module")
def fig6_data():
    results = sweep(
        sizes=_SCALE["fig_sizes"],
        trials=min(_SCALE["trials"], 5),
        degrees=(6,),
        seed=6,
    )
    return figure6(results=results)


def test_fig6_series(benchmark, fig6_data):
    from repro.core.grid import PolarGrid
    from repro.workloads.generators import unit_disk

    n = _SCALE["fig_sizes"][-1]
    points = unit_disk(min(n, 100_000), seed=6)[1:]

    # Time the k-selection itself (grid fitting), the step this figure
    # characterises.
    benchmark(PolarGrid.fit, points, (0.0, 0.0))

    fig = fig6_data
    benchmark.extra_info["rings"] = [round(v, 3) for v in fig.series["rings k"]]
    print()
    print(fig.render())


def test_fig6_monotone_in_n(fig6_data):
    ks = fig6_data.series["rings k"]
    assert all(a <= b for a, b in zip(ks, ks[1:]))


def test_fig6_logarithmic_envelope(fig6_data):
    """k sits between the eq.(5) floor and the occupancy ceiling log2 n."""
    for n, k in zip(fig6_data.xs, fig6_data.series["rings k"]):
        assert k >= rings_lower_bound(n) - 1.0
        assert k <= math.log2(n) + 1.0


def test_fig6_slope_is_logarithmic(fig6_data):
    """Each 10x in n adds roughly log2(10)/2 ~ 1.7 .. 3.3 rings."""
    ks = fig6_data.series["rings k"]
    ns = fig6_data.xs
    per_decade = (ks[-1] - ks[0]) / (math.log10(ns[-1]) - math.log10(ns[0]))
    assert 1.2 < per_decade < 3.6, per_decade
