"""Ablation A5: dynamic membership (the paper's "decentralized version").

Measures what the maintenance policy costs: join latency, the quality
gap (maintained radius over fresh-rebuild radius) as churn accumulates,
and how the rebuild threshold trades build work for delay quality.
"""

import numpy as np
import pytest

from repro.overlay.dynamic import DynamicOverlay

pytestmark = pytest.mark.bench


def churn(overlay, events, seed, join_prob=0.7):
    rng = np.random.default_rng(seed)
    alive = []
    counter = 0
    for _ in range(events):
        if not alive or rng.random() < join_prob:
            name = f"c{counter}"
            counter += 1
            overlay.join(name, rng.normal(size=2) * 0.4)
            alive.append(name)
        else:
            overlay.leave(alive.pop(int(rng.integers(0, len(alive)))))
    return alive


def test_join_throughput(benchmark):
    """Joins against a 2,000-member group."""
    overlay = DynamicOverlay((0.0, 0.0), 6, rebuild_threshold=None)
    rng = np.random.default_rng(30)
    for i in range(2_000):
        overlay.join(f"seed{i}", rng.normal(size=2) * 0.4)

    counter = [0]

    def one_join():
        counter[0] += 1
        overlay.join(f"bench{counter[0]}", rng.normal(size=2) * 0.4)

    benchmark(one_join)
    benchmark.extra_info["group_size"] = overlay.n


@pytest.mark.parametrize("threshold", [None, 0.5, 0.1])
def test_churn_with_threshold(benchmark, threshold):
    def run():
        overlay = DynamicOverlay((0.0, 0.0), 6, rebuild_threshold=threshold)
        churn(overlay, 600, seed=31)
        return overlay

    overlay = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = overlay.quality_gap()
    benchmark.extra_info.update(
        threshold=str(threshold),
        rebuilds=overlay.rebuild_count,
        quality_gap=round(gap, 4),
        final_size=overlay.n,
    )
    overlay.tree().validate(max_out_degree=6)


def test_quality_gap_stays_bounded():
    """The maintained tree stays within a narrow band of a fresh
    polar-grid rebuild under heavy churn.

    Note the gap can drop *below* 1 at ~10^3 members: greedy min-delay
    joins are strong at small n (the same effect as the compact-tree
    baseline), while the polar grid's advantage is its near-linear cost
    and asymptotic guarantee. Rebuilds are about sustaining that
    guarantee at scale, not about winning at a thousand nodes.
    """
    drifting = DynamicOverlay((0.0, 0.0), 6, rebuild_threshold=None)
    churn(drifting, 1_500, seed=32)
    drift_gap = drifting.quality_gap()

    maintained = DynamicOverlay((0.0, 0.0), 6, rebuild_threshold=0.2)
    churn(maintained, 1_500, seed=32)
    maintained_gap = maintained.quality_gap()

    assert maintained.rebuild_count > 0
    assert 0.6 < drift_gap < 1.6
    assert 0.6 < maintained_gap < 1.6
