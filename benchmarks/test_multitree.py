"""Ablation A8: striped multi-trees and heterogeneous populations.

Two deployment-shaped questions: what does striping buy (load spread vs
per-stripe delay), and what does a leaf-heavy population cost the
backbone?
"""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.heterogeneous import build_heterogeneous_tree
from repro.overlay.multitree import build_striped_trees
from repro.workloads.generators import unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

N = 10_000


@pytest.mark.parametrize("stripes", [1, 2, 3])
def test_striped_build(benchmark, stripes):
    points = unit_disk(N, seed=60)
    budget = 2 * stripes  # keep per-stripe fan-out constant at 2
    multi = benchmark(build_striped_trees, points, 0, budget, stripes)
    multi.validate(total_budget=budget)
    stats = multi.load_stats()
    benchmark.extra_info.update(
        stripes=stripes,
        completion_radius=round(multi.completion_radius(), 4),
        forwarding_fraction=round(stats["forwarding_fraction"], 4),
    )


def test_striping_spreads_load():
    points = unit_disk(N, seed=61)
    single = build_polar_grid_tree(points, 0, 4).tree
    single_frac = np.count_nonzero(single.out_degrees()[1:] > 0) / (N - 1)
    multi = build_striped_trees(points, 0, 4, 2)
    assert multi.load_stats()["forwarding_fraction"] > single_frac + 0.05
    # And per-stripe delay stays in the binary construction's ballpark.
    assert max(multi.stripe_radii()) < 1.35 * single.radius()


@pytest.mark.parametrize("leaf_fraction", [0.0, 0.3, 0.6])
def test_heterogeneous_build(benchmark, leaf_fraction):
    rng = np.random.default_rng(62)
    points = unit_disk(N, seed=62)
    budgets = np.where(rng.random(N) < leaf_fraction, 0, 6).astype(np.int64)
    budgets[0] = 6
    result = benchmark(build_heterogeneous_tree, points, budgets)
    degrees = result.tree.out_degrees()
    assert np.all(degrees <= budgets)
    benchmark.extra_info.update(
        leaf_fraction=leaf_fraction, radius=round(result.radius, 4)
    )


def test_leaf_fraction_costs_bounded_delay():
    """Even with 60% freeloaders the radius stays close to the all-
    forwarders binary tree (leaves add one greedy hop)."""
    rng = np.random.default_rng(63)
    points = unit_disk(N, seed=63)
    budgets = np.where(rng.random(N) < 0.6, 0, 6).astype(np.int64)
    budgets[0] = 6
    het = build_heterogeneous_tree(points, budgets)
    uniform = build_polar_grid_tree(points, 0, 2)
    assert het.radius < 1.5 * uniform.radius
