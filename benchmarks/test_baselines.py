"""Ablation A1: Algorithm Polar_Grid against the baseline heuristics.

Not a paper figure — the paper evaluates only its own algorithm — but
the claim implicit in its related-work discussion is checkable: delay-
oblivious joins (bandwidth-latency, capped star, random) degrade with
group size while the polar grid converges; and the O(n^2) greedy compact
tree, though excellent on radius, is priced out of large groups, which
is the scalability argument the paper leads with.
"""

import time

import pytest

from repro.baselines import (
    bandwidth_latency_tree,
    capped_star,
    compact_tree,
    random_feasible_tree,
)
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

N_QUALITY = 4_000
DEGREE = 6

BUILDERS = {
    "polar-grid": lambda pts: build_polar_grid_tree(pts, 0, DEGREE).tree,
    "compact-tree": lambda pts: compact_tree(pts, 0, DEGREE),
    "bandwidth-latency": lambda pts: bandwidth_latency_tree(
        pts, 0, DEGREE, seed=0
    ),
    "capped-star": lambda pts: capped_star(pts, 0, DEGREE),
    "random": lambda pts: random_feasible_tree(pts, 0, DEGREE, seed=0),
}


@pytest.mark.parametrize("name", list(BUILDERS))
def test_baseline_build_time(benchmark, name):
    points = unit_disk(N_QUALITY, seed=10)
    tree = benchmark(BUILDERS[name], points)
    tree.validate(max_out_degree=DEGREE)
    benchmark.extra_info.update(
        algorithm=name, n=N_QUALITY, radius=round(tree.radius(), 4)
    )


def test_quality_ordering():
    """On a 4k-node disk: {polar grid, compact tree} beat the delay-
    oblivious baselines by a wide margin."""
    points = unit_disk(N_QUALITY, seed=11)
    radii = {name: fn(points).radius() for name, fn in BUILDERS.items()}
    assert radii["polar-grid"] < radii["capped-star"]
    assert radii["polar-grid"] < radii["random"] / 2
    assert radii["compact-tree"] < radii["capped-star"]
    # The asymptotically-optimal tree is within 25% of the strong greedy.
    assert radii["polar-grid"] < radii["compact-tree"] * 1.25


def test_polar_grid_converges_baselines_do_not():
    """Growing n: polar-grid's radius falls toward 1; the capped star's
    does not improve."""
    small, large = 1_000, 30_000
    grid_small = build_polar_grid_tree(unit_disk(small, seed=12), 0, DEGREE)
    grid_large = build_polar_grid_tree(unit_disk(large, seed=12), 0, DEGREE)
    star_large = capped_star(unit_disk(large, seed=12), 0, DEGREE)
    assert grid_large.radius < grid_small.radius
    assert star_large.radius() > grid_large.radius * 1.3


def test_scalability_crossover():
    """The paper's real pitch: near-linear build time. The greedy
    compact tree's per-node cost grows ~linearly in n (it is O(n^2)
    total); the polar grid's stays flat."""
    def per_node_seconds(builder, n):
        points = unit_disk(n, seed=13)
        t0 = time.perf_counter()
        builder(points)
        return (time.perf_counter() - t0) / n

    grid_small = per_node_seconds(BUILDERS["polar-grid"], 2_000)
    grid_big = per_node_seconds(BUILDERS["polar-grid"], 50_000)
    compact_small = per_node_seconds(BUILDERS["compact-tree"], 2_000)
    compact_big = per_node_seconds(BUILDERS["compact-tree"], 8_000)

    assert grid_big < grid_small * 5  # near-linear
    assert compact_big > compact_small * 2  # clearly super-linear
