"""Benchmark: Figure 4 — average max delay vs eq.(7) bound vs core delay.

Regenerates the three out-degree-6 series of Figure 4 and asserts their
shape: the bound dominates and tightens with n, delay and core both fall
toward 1, and the delay-core gap persists (the paper explains it by the
outermost ring's constant width).
"""

import pytest

from benchmarks.conftest import current_scale
from repro.experiments.figures import figure4, sweep

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.fixture(scope="module")
def fig4_data():
    results = sweep(
        sizes=_SCALE["fig_sizes"],
        trials=min(_SCALE["trials"], 5),
        degrees=(6,),
        seed=4,
    )
    return figure4(results=results)


def test_fig4_series(benchmark, fig4_data):
    """Times one representative build; carries the figure series in
    extra_info, and renders the ASCII figure."""
    from repro.core.builder import build_polar_grid_tree
    from repro.workloads.generators import unit_disk

    mid_n = _SCALE["fig_sizes"][len(_SCALE["fig_sizes"]) // 2]
    points = unit_disk(mid_n, seed=4)
    benchmark(build_polar_grid_tree, points, 0, 6)

    fig = fig4_data
    benchmark.extra_info["series"] = {
        label: [round(v, 4) for v in values]
        for label, values in fig.series.items()
    }
    print()
    print(fig.render())


def test_fig4_bound_dominates_everywhere(fig4_data):
    fig = fig4_data
    for bound, delay, core in zip(
        fig.series["bound eq.(7)"],
        fig.series["max delay"],
        fig.series["core delay"],
    ):
        assert bound > delay > core


def test_fig4_bound_tightens(fig4_data):
    """The bound over-estimates badly at small n and improves with n —
    the paper's main commentary on this figure."""
    fig = fig4_data
    gap = [
        b - d
        for b, d in zip(fig.series["bound eq.(7)"], fig.series["max delay"])
    ]
    assert gap[0] > 3.0  # wild at n=100
    assert gap[-1] < 1.0  # tight at the largest size
    assert all(a > b for a, b in zip(gap, gap[1:]))


def test_fig4_delay_core_gap_persists(fig4_data):
    """Delay minus core does not vanish (outermost-ring effect)."""
    fig = fig4_data
    gaps = [
        d - c
        for d, c in zip(fig.series["max delay"], fig.series["core delay"])
    ]
    assert all(g > 0.03 for g in gaps)
