"""Benchmark: Figure 8 — average max delay in the three-dimensional
unit sphere, out-degree 10 vs out-degree 2.

The paper's claims: both variants converge to the lower bound of 1; the
gap between them narrows with n; and 3-D delays exceed 2-D delays at
equal n (sparser points in higher dimension).
"""

import pytest

from benchmarks.conftest import current_scale
from repro.experiments.figures import figure8, sweep
from repro.experiments.runner import aggregate, run_trials

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.fixture(scope="module")
def fig8_data():
    results = sweep(
        sizes=_SCALE["fig8_sizes"],
        trials=min(_SCALE["trials"], 5),
        degrees=(10, 2),
        dim=3,
        seed=8,
    )
    return figure8(results=results)


def test_fig8_series(benchmark, fig8_data):
    from repro.core.builder import build_polar_grid_tree
    from repro.workloads.generators import unit_ball

    mid_n = _SCALE["fig8_sizes"][len(_SCALE["fig8_sizes"]) // 2]
    points = unit_ball(mid_n, dim=3, seed=8)
    result = benchmark(build_polar_grid_tree, points, 0, 10)
    result.tree.validate(max_out_degree=10)

    fig = fig8_data
    benchmark.extra_info["series"] = {
        label: [round(v, 4) for v in values]
        for label, values in fig.series.items()
    }
    print()
    print(fig.render())


def test_fig8_degree2_above_degree10(fig8_data):
    for d2, d10 in zip(
        fig8_data.series["out-degree 2"], fig8_data.series["out-degree 10"]
    ):
        assert d2 > d10


def test_fig8_gap_narrows(fig8_data):
    d2 = fig8_data.series["out-degree 2"]
    d10 = fig8_data.series["out-degree 10"]
    assert (d2[-1] - d10[-1]) < (d2[0] - d10[0])


def test_fig8_both_converge(fig8_data):
    d2 = fig8_data.series["out-degree 2"]
    d10 = fig8_data.series["out-degree 10"]
    assert d2[-1] < d2[0]
    assert d10[-1] < d10[0]


def test_fig8_3d_slower_than_2d():
    """At equal n, 3-D delay exceeds 2-D delay (paper's closing remark
    on this figure)."""
    n = 5_000
    two_d = aggregate(run_trials(n, 6, trials=3, dim=2, seed=9)).delay
    three_d = aggregate(run_trials(n, 10, trials=3, dim=3, seed=9)).delay
    assert three_d > two_d
