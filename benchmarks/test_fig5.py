"""Benchmark: Figure 5 — average max delay, out-degree 2 vs out-degree 6.

The paper's claims for this figure: the degree-2 overhead is roughly
twice the degree-6 overhead, and both curves converge to the lower bound
of 1 as n grows — "the degree of each particular node becomes less and
less important".
"""

import pytest

from benchmarks.conftest import current_scale
from repro.experiments.figures import figure5, sweep

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.fixture(scope="module")
def fig5_data():
    results = sweep(
        sizes=_SCALE["fig_sizes"],
        trials=min(_SCALE["trials"], 5),
        degrees=(6, 2),
        seed=5,
    )
    return figure5(results=results)


def test_fig5_series(benchmark, fig5_data):
    from repro.core.builder import build_polar_grid_tree
    from repro.workloads.generators import unit_disk

    mid_n = _SCALE["fig_sizes"][len(_SCALE["fig_sizes"]) // 2]
    points = unit_disk(mid_n, seed=5)
    benchmark(build_polar_grid_tree, points, 0, 2)

    fig = fig5_data
    benchmark.extra_info["series"] = {
        label: [round(v, 4) for v in values]
        for label, values in fig.series.items()
    }
    print()
    print(fig.render())


def test_fig5_degree2_above_degree6(fig5_data):
    for d2, d6 in zip(
        fig5_data.series["out-degree 2"], fig5_data.series["out-degree 6"]
    ):
        assert d2 > d6


def test_fig5_overhead_ratio_about_two(fig5_data):
    """Averaged across sizes, overhead(deg2)/overhead(deg6) ~ 2."""
    ratios = [
        (d2 - 1.0) / (d6 - 1.0)
        for d2, d6 in zip(
            fig5_data.series["out-degree 2"], fig5_data.series["out-degree 6"]
        )
        if d6 > 1.0
    ]
    mean_ratio = sum(ratios) / len(ratios)
    assert 1.3 < mean_ratio < 3.5, ratios


def test_fig5_both_converge(fig5_data):
    d2 = fig5_data.series["out-degree 2"]
    d6 = fig5_data.series["out-degree 6"]
    assert d2[-1] < d2[0] / 1.5
    assert d6[-1] < d6[0] / 1.4
    assert d2[-1] < 1.2
    assert d6[-1] < 1.1
