"""Benchmark: Figure 7 — running time vs number of nodes.

This is the figure pytest-benchmark is made for: one timed build per
size. The paper's claim is near-linear growth ("running time increases
almost linearly, which makes it possible to run the algorithm for
networks with very large sizes"); we assert that time per node stays
within a small factor across two orders of magnitude.
"""

import time

import pytest

from benchmarks.conftest import current_scale
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.mark.parametrize("degree", [6, 2])
@pytest.mark.parametrize("n", _SCALE["fig_sizes"])
def test_fig7_build_time(benchmark, n, degree):
    points = unit_disk(n, seed=7)
    result = benchmark(build_polar_grid_tree, points, 0, degree)
    benchmark.extra_info.update(
        n=n, degree=degree, seconds_single_run=round(result.build_seconds, 4)
    )


def test_fig7_near_linear_growth():
    """Per-node build time varies by < 6x from 1k to 100k nodes (an
    O(n^2) algorithm would blow past 100x)."""
    per_node = {}
    for n in (1_000, 10_000, 100_000):
        points = unit_disk(n, seed=8)
        t0 = time.perf_counter()
        build_polar_grid_tree(points, 0, 6)
        per_node[n] = (time.perf_counter() - t0) / n
    ratio = max(per_node.values()) / min(per_node.values())
    assert ratio < 6.0, per_node
