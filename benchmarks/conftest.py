"""Benchmark configuration.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — sizes up to 50,000 nodes, a handful of trials;
  finishes in a couple of minutes on a laptop.
* ``medium`` — sizes up to 1,000,000 nodes.
* ``paper``  — the full Section V protocol: sizes up to 5,000,000 nodes.
  Budget hours of CPU (the paper itself reports 132 s *per trial* at 5M
  on its hardware; ours is in the same ballpark per trial).

Trial counts for the delay *statistics* are kept small even at paper
scale (the paper used 200; the means are stable long before that), while
``pytest-benchmark`` handles the timing statistics itself.
"""

from __future__ import annotations

import os

import pytest

SCALES = {
    "small": {
        "table1_sizes": (100, 500, 1_000, 5_000, 10_000, 50_000),
        "fig_sizes": (100, 500, 1_000, 5_000, 10_000, 50_000),
        "fig8_sizes": (100, 500, 1_000, 5_000, 10_000),
        "trials": 10,
    },
    "medium": {
        "table1_sizes": (100, 1_000, 10_000, 100_000, 1_000_000),
        "fig_sizes": (100, 1_000, 10_000, 100_000, 1_000_000),
        "fig8_sizes": (100, 1_000, 10_000, 100_000),
        "trials": 20,
    },
    "paper": {
        "table1_sizes": (
            100, 500, 1_000, 5_000, 10_000, 50_000,
            100_000, 500_000, 1_000_000, 5_000_000,
        ),
        "fig_sizes": (
            100, 500, 1_000, 5_000, 10_000, 50_000,
            100_000, 500_000, 1_000_000, 5_000_000,
        ),
        "fig8_sizes": (100, 1_000, 10_000, 100_000, 1_000_000),
        "trials": 30,
    },
}


def current_scale() -> dict:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}; got {name!r}"
        )
    return SCALES[name]


@pytest.fixture(scope="session")
def scale() -> dict:
    return current_scale()
