"""Ablation A6: extension studies — degree sweep, regions, quadtree.

Quantifies three questions the paper raises but leaves unmeasured: how
much fan-out beyond the construction threshold buys (nothing), how the
algorithm behaves on every Section IV-C region class, and how the
square-grid bisection the paper "could have described" compares to the
polar one it did describe.
"""

import pytest

from repro.core.builder import build_bisection_tree
from repro.core.quadtree import build_quadtree_tree
from repro.experiments.extensions import (
    algorithm_showdown,
    degree_sweep,
    region_study,
)
from repro.workloads.generators import rectangle_points, unit_disk

pytestmark = pytest.mark.bench

N = 5_000


def test_degree_sweep_rows(benchmark):
    rows = benchmark.pedantic(
        degree_sweep,
        kwargs=dict(n=N, degrees=(2, 4, 6, 12), trials=3, seed=40),
        rounds=1,
        iterations=1,
    )
    by_degree = {r["degree"]: r for r in rows}
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    # The two construction regimes, and saturation beyond 6.
    assert by_degree[2]["delay"] == pytest.approx(by_degree[4]["delay"])
    assert by_degree[6]["delay"] < by_degree[2]["delay"]
    assert by_degree[12]["delay"] == pytest.approx(by_degree[6]["delay"])


def test_region_study_rows(benchmark):
    rows = benchmark.pedantic(
        region_study,
        kwargs=dict(n=N, trials=3, seed=41),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    for row in rows:
        if "non-convex" in row["workload"]:
            assert 1.5 < row["delay_over_bound"] < 3.5
        else:
            assert row["delay_over_bound"] < 1.4


def test_showdown_rows(benchmark):
    rows = benchmark.pedantic(
        algorithm_showdown, kwargs=dict(n=N, seed=42), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    by_name = {r["algorithm"]: r for r in rows}
    assert by_name["polar-grid deg6"]["vs_bound"] < 1.3
    assert by_name["random deg6"]["vs_bound"] > 3.0


@pytest.mark.parametrize("variant", ["quadtree", "polar-bisection"])
def test_bisection_variant_build(benchmark, variant):
    points = unit_disk(N, seed=43)
    if variant == "quadtree":
        result = benchmark(build_quadtree_tree, points, 0, 4)
    else:
        result = benchmark(build_bisection_tree, points, 0, 4)
    result.tree.validate(max_out_degree=4)
    benchmark.extra_info.update(
        variant=variant, radius=round(result.radius, 4)
    )


def test_quadtree_wins_on_boxes():
    """On box-shaped clouds the square split matches the geometry."""
    points = rectangle_points(N, upper=(1.0, 1.0), seed=44)
    quad = build_quadtree_tree(points, 0, 4).radius
    polar = build_bisection_tree(points, 0, 4).radius
    assert quad < polar
