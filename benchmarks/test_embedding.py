"""Ablation A3: the algorithm combined with coordinate embeddings.

The paper's future work: "Since for all mapping methods, there is
usually a discrepancy between the Euclidean distances and the actual
transmission delays, it is interesting to see how well the algorithm
performs in combination with the mapping."

We measure exactly that: trees built on GNP/Vivaldi coordinates from
noisy or graph-structured delay matrices, scored on the TRUE delays,
as a function of embedding distortion.
"""

import pytest

from repro.core.builder import build_polar_grid_tree
from repro.embedding import (
    embedding_distortion,
    gnp_embedding,
    noisy_euclidean_delays,
    transit_stub_delays,
    vivaldi_embedding,
)
from repro.workloads.generators import unit_disk

pytestmark = pytest.mark.bench

N_HOSTS = 150


def true_radius(tree, delays) -> float:
    parent = tree.parent
    worst = 0.0
    for node in range(tree.n):
        total, walk = 0.0, node
        while walk != tree.root:
            total += delays[walk, int(parent[walk])]
            walk = int(parent[walk])
        worst = max(worst, total)
    return worst


@pytest.mark.parametrize("embedder", ["gnp", "vivaldi"])
def test_embedding_time(benchmark, embedder):
    points = unit_disk(N_HOSTS, seed=40)
    delays = noisy_euclidean_delays(points, noise=0.1, seed=40)
    if embedder == "gnp":
        coords = benchmark(gnp_embedding, delays, 2, 9, 40)
    else:
        coords = benchmark(vivaldi_embedding, delays, 2, 60, 0.25, 40)
    err = embedding_distortion(delays, coords)
    benchmark.extra_info.update(
        embedder=embedder,
        median_rel_error=round(err["median_ratio_error"], 4),
    )


@pytest.mark.parametrize("noise", [0.0, 0.1, 0.3])
def test_tree_quality_vs_embedding_noise(benchmark, noise):
    """The answer to the paper's open question, quantified: true-delay
    radius degrades gracefully with embedding distortion."""
    points = unit_disk(N_HOSTS, seed=41)
    delays = noisy_euclidean_delays(points, noise=noise, seed=41)
    coords = gnp_embedding(delays, dim=2, n_landmarks=9, seed=41)

    result = benchmark(build_polar_grid_tree, coords, 0, 6)
    measured = true_radius(result.tree, delays)
    direct_max = float(delays[0].max())
    benchmark.extra_info.update(
        noise=noise,
        embedded_radius=round(result.radius, 4),
        true_radius=round(measured, 4),
        inflation_vs_direct=round(measured / direct_max, 4),
    )
    # Even at 30% noise the tree's true worst delay stays within a small
    # factor of the unavoidable direct delay to the farthest host.
    assert measured < 5.0 * direct_max


def test_noise_monotonically_hurts():
    points = unit_disk(N_HOSTS, seed=42)
    inflations = []
    for noise in (0.0, 0.4):
        delays = noisy_euclidean_delays(points, noise=noise, seed=42)
        coords = gnp_embedding(delays, dim=2, n_landmarks=9, seed=42)
        tree = build_polar_grid_tree(coords, 0, 6).tree
        inflations.append(true_radius(tree, delays) / float(delays[0].max()))
    assert inflations[1] > inflations[0]


def test_transit_stub_pipeline(benchmark):
    """Graph-structured (non-metric-embeddable) delays: the hard case."""
    delays = transit_stub_delays(N_HOSTS, n_transit=8, seed=43)
    coords = gnp_embedding(delays, dim=2, n_landmarks=9, seed=43)

    result = benchmark(build_polar_grid_tree, coords, 0, 6)
    measured = true_radius(result.tree, delays)
    err = embedding_distortion(delays, coords)
    benchmark.extra_info.update(
        median_rel_error=round(err["median_ratio_error"], 4),
        true_radius_ms=round(measured, 2),
        direct_max_ms=round(float(delays[0].max()), 2),
    )
    assert measured < 8.0 * float(delays[0].max())
