"""Ablation A4: the minimum-diameter variant (paper's Conclusion).

The paper claims its algorithm, rooted at an artificial node near the
cloud centre, also solves the minimum-diameter degree-limited problem:
asymptotically optimally in a sphere, within a factor of 2 in general
convex regions. We measure convergence of the diameter toward the
cloud's own diameter (the unbeatable lower bound) and the diameter/
radius relationship.
"""

import numpy as np
import pytest

from benchmarks.conftest import current_scale
from repro.core.diameter import build_min_diameter_tree, tree_diameter
from repro.workloads.generators import unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()
SIZES = tuple(s for s in _SCALE["fig_sizes"] if s <= 100_000)


@pytest.mark.parametrize("n", SIZES)
def test_min_diameter_build(benchmark, n):
    points = unit_disk(n, seed=90)

    def build():
        return build_min_diameter_tree(points, 6)

    result, diameter = benchmark(build)
    result.tree.validate(max_out_degree=6)
    # Sampled farthest-pair lower bound on the optimal diameter.
    sample = points[:: max(1, n // 64)]
    spread = float(
        np.sqrt(
            ((sample[:, None, :] - sample[None, :, :]) ** 2).sum(axis=2)
        ).max()
    )
    benchmark.extra_info.update(
        n=n,
        diameter=round(diameter, 4),
        cloud_spread=round(spread, 4),
        ratio=round(diameter / spread, 4),
    )
    assert diameter >= spread - 1e-9


def test_diameter_converges_to_cloud_diameter():
    """diameter/OPT -> 1 with n (sphere case of the conclusion)."""
    ratios = []
    for n in (500, 5_000, 50_000):
        points = unit_disk(n, seed=91)
        _result, diameter = build_min_diameter_tree(points, 6)
        # Farthest-pair lower bound over a sample (exact enough here).
        sample = points[:: max(1, n // 128)]
        spread = float(
            np.sqrt(
                ((sample[:, None, :] - sample[None, :, :]) ** 2).sum(axis=2)
            ).max()
        )
        ratios.append(diameter / spread)
    assert ratios[2] < ratios[1] < ratios[0]
    assert ratios[2] < 1.25


def test_diameter_between_radius_and_twice_radius():
    points = unit_disk(20_000, seed=92)
    result, diameter = build_min_diameter_tree(points, 6)
    radius = result.tree.radius()
    assert radius <= diameter <= 2 * radius


def test_central_root_beats_boundary_root():
    """The artificial-root choice is the whole trick: rooting at a
    boundary node roughly doubles the diameter."""
    from repro.core.builder import build_polar_grid_tree

    points = unit_disk(10_000, seed=93)
    _result, central = build_min_diameter_tree(points, 6)
    boundary = int(np.argmax(np.linalg.norm(points, axis=1)))
    edge_tree = build_polar_grid_tree(points, boundary, 6).tree
    assert tree_diameter(edge_tree) > central * 1.3
