"""Gate: the observability layer must be ~free while disabled.

Mirrors ``tools/bench_obs.py`` (which writes the committed
``BENCH_obs.json`` artifact): the structural disabled-mode overhead —
no-op call cost × instrumentation points per build ÷ build time — must
stay below 2%.
"""

from __future__ import annotations

import pytest

from tools.bench_obs import GATE_PCT, run

pytestmark = pytest.mark.bench


def test_disabled_overhead_under_gate():
    report = run(n=20_000, repeats=5)
    assert report["disabled_overhead_pct"] < GATE_PCT, report


def test_noop_calls_are_nanoseconds():
    # A disabled span/add call must stay well under a microsecond —
    # that is what makes leaving instrumentation in hot paths safe.
    report = run(n=5_000, repeats=3)
    assert report["noop_span_ns"] < 5_000, report
    assert report["noop_add_ns"] < 5_000, report
