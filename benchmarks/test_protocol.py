"""Ablation A7: the price of decentralisation.

Compares, on identical join sequences: the polar-grid full build
(global, the paper's algorithm), the centralised greedy maintainer, and
the message-level decentralised protocol — radius plus the messages per
join that the decentralised variant pays instead of global knowledge.
"""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.protocol import DistributedJoinProtocol

pytestmark = pytest.mark.bench

N = 2_000


@pytest.fixture(scope="module")
def join_coords():
    rng = np.random.default_rng(50)
    return [rng.normal(size=2) * 0.4 for _ in range(N)]


def test_protocol_join_throughput(benchmark, join_coords):
    proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
    for i, c in enumerate(join_coords):
        proto.join(f"seed{i}", c)
    rng = np.random.default_rng(51)
    counter = [0]

    def one_join():
        counter[0] += 1
        proto.join(f"bench{counter[0]}", rng.normal(size=2) * 0.4)

    benchmark(one_join)
    benchmark.extra_info.update(
        group_size=proto.n,
        mean_messages_per_join=round(proto.mean_messages_per_join(), 2),
    )


def test_quality_vs_centralisation(benchmark, join_coords):
    def run():
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
        central = DynamicOverlay(
            (0.0, 0.0), max_out_degree=4, rebuild_threshold=None
        )
        for i, c in enumerate(join_coords):
            proto.join(f"m{i}", c)
            central.join(f"m{i}", c)
        return proto, central

    proto, central = benchmark.pedantic(run, rounds=1, iterations=1)
    points = proto.tree().points
    grid = build_polar_grid_tree(points, 0, 4)

    benchmark.extra_info.update(
        decentralised_radius=round(proto.radius(), 4),
        centralised_radius=round(central.radius(), 4),
        polar_grid_radius=round(grid.radius, 4),
        messages_per_join=round(proto.mean_messages_per_join(), 2),
    )
    # Local knowledge costs some delay but not unboundedly much.
    assert proto.radius() <= 2.5 * central.radius()
    # And it really is local: probes per join stay far below n.
    assert proto.mean_messages_per_join() < N / 10


def test_messages_grow_logarithmically(join_coords):
    """Mean probes per join should grow like the tree depth, not n."""
    small = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
    for i, c in enumerate(join_coords[:200]):
        small.join(f"a{i}", c)
    big = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
    for i, c in enumerate(join_coords):
        big.join(f"b{i}", c)
    # 10x the members, far less than 10x the probes.
    assert big.mean_messages_per_join() < 4 * small.mean_messages_per_join()
