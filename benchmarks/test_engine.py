"""Benchmark: serial vs process trial engine on Table-I-shaped work.

Times :func:`run_trials` through both backends on the mid-size rows of
Table I (where a laptop spends its time) and checks the parallel run is
record-identical to the serial one. Throughput numbers for the perf
trajectory come from ``tools/bench_report.py`` (the ``BENCH_engine.json``
artifact); this module keeps the comparison honest under pytest.

Run::

    pytest benchmarks/test_engine.py -m bench
"""

import dataclasses
import os
import time

import pytest

from benchmarks.conftest import current_scale
from repro.experiments.parallel import ProcessExecutor, TrialTask
from repro.experiments.runner import run_trials

pytestmark = pytest.mark.bench

_SCALE = current_scale()
# Table-I-shaped: the sizes where trial counts (not one huge build)
# dominate the wall clock.
SIZES = tuple(n for n in _SCALE["table1_sizes"] if 1_000 <= n <= 50_000)
TRIALS = max(4, _SCALE["trials"] // 2)
WORKERS = min(4, os.cpu_count() or 1)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("degree", (6, 2))
def test_engines_agree_and_report_throughput(n, degree):
    started = time.perf_counter()
    serial = run_trials(n, degree, trials=TRIALS, seed=0, engine="serial")
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    with ProcessExecutor(max_workers=WORKERS) as ex:
        parallel = ex.map(
            [TrialTask(n, degree, 2, seed=t) for t in range(TRIALS)]
        )
    parallel_s = time.perf_counter() - started

    def strip(rs):
        return [dataclasses.replace(r, seconds=0.0) for r in rs]

    assert strip(serial) == strip(parallel)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nn={n} degree={degree} trials={TRIALS}: "
        f"serial {serial_s:.2f}s, process[{WORKERS}] {parallel_s:.2f}s "
        f"({speedup:.2f}x)"
    )


def test_engine_benchmark(benchmark):
    """pytest-benchmark timing of the process engine at one cell."""
    n = SIZES[0] if SIZES else 5_000

    def build_batch():
        with ProcessExecutor(max_workers=WORKERS) as ex:
            return ex.map(
                [TrialTask(n, 6, 2, seed=t) for t in range(TRIALS)]
            )

    records = benchmark.pedantic(build_batch, rounds=1, iterations=1)
    assert len(records) == TRIALS
    benchmark.extra_info["n"] = n
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["workers"] = WORKERS
