"""Differential backend coverage: reference vs numpy vs numba.

The vectorised build path (:mod:`repro.core.vectorized`) promises
*bit-identical* trees to the paper-shaped reference loops — same parent
array, same radius, same error behaviour. These tests enforce that
contract across dimensions, degrees, adversarial point layouts, and the
fuzz seed corpus, and pin down the backend-resolution rules
(explicit > ``REPRO_BUILD_BACKEND`` > default, numba falling back to
numpy when the JIT is absent). docs/PERFORMANCE.md documents the
contract; ``tools/bench_build.py`` re-checks it at benchmark scale.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.analysis import check_build_result
from repro.core.backends import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    numba_available,
    resolve_backend,
)
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.core.core_network import WiringError
from repro.testing.fuzz import instance_from_seed
from repro.workloads.generators import unit_ball, unit_disk


def assert_same_build(a, b):
    """Bit-identical contract: same parents, same radius, same rings."""
    assert np.array_equal(a.tree.parent, b.tree.parent)
    assert a.radius == b.radius
    assert a.rings == b.rings


def cloud(n, dim, seed):
    return unit_disk(n, seed=seed) if dim == 2 else unit_ball(n, dim=dim, seed=seed)


class TestBackendResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("reference") == "reference"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend(None) == "reference"

    def test_names_are_normalised(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend("  Reference ") == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown build backend"):
            resolve_backend("cython")

    def test_numba_resolution_matches_availability(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend("numba") == expected

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_fallback_counts(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        obs.reset()
        obs.enable()
        try:
            resolve_backend("numba")
            snap = obs.snapshot()
        finally:
            obs.reset()
        assert snap["build.backend.numba_fallback.total"]["value"] == 1

    def test_build_records_backend_counter(self):
        obs.reset()
        obs.enable()
        try:
            build_polar_grid_tree(unit_disk(40, seed=0), 0, 6, backend="numpy")
            snap = obs.snapshot()
        finally:
            obs.reset()
        assert snap["build.backend.numpy.total"]["value"] == 1


class TestPolarGridDifferential:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("degree", [2, 6, 10])
    @pytest.mark.parametrize("n", [3, 7, 50, 400])
    def test_matrix(self, dim, degree, n):
        points = cloud(n, dim, seed=31 * dim + n)
        ref = build_polar_grid_tree(points, 0, degree, backend="reference")
        for backend in ("numpy", "numba"):
            fast = build_polar_grid_tree(points, 0, degree, backend=backend)
            assert_same_build(ref, fast)
        report = check_build_result(fast, points, degree, 0)
        assert report.ok, report.render()

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzz_corpus(self, seed):
        inst = instance_from_seed(0, seed)
        ref = build_polar_grid_tree(
            inst.points, inst.source, inst.d_max, backend="reference"
        )
        fast = build_polar_grid_tree(
            inst.points, inst.source, inst.d_max, backend="numpy"
        )
        assert_same_build(ref, fast)

    def test_duplicate_points(self):
        points = np.repeat(unit_disk(9, seed=3), 4, axis=0)
        ref = build_polar_grid_tree(points, 0, 4, backend="reference")
        fast = build_polar_grid_tree(points, 0, 4, backend="numpy")
        assert_same_build(ref, fast)

    def test_off_centre_source(self):
        points = unit_disk(120, seed=8)
        ref = build_polar_grid_tree(points, 17, 6, backend="reference")
        fast = build_polar_grid_tree(points, 17, 6, backend="numpy")
        assert_same_build(ref, fast)

    def test_forced_k_wiring_error_parity(self):
        # A forced-too-deep grid leaves interior parent cells empty; both
        # paths must raise WiringError with the same message (the
        # vectorised path checks up front, the reference mid-wiring).
        points = unit_disk(12, seed=5)
        with pytest.raises(WiringError) as ref_exc:
            build_polar_grid_tree(points, 0, 6, k=6, backend="reference")
        with pytest.raises(WiringError) as fast_exc:
            build_polar_grid_tree(points, 0, 6, k=6, backend="numpy")
        assert str(ref_exc.value) == str(fast_exc.value)

    def test_forced_k_success_parity(self):
        points = unit_disk(300, seed=6)
        ref = build_polar_grid_tree(points, 0, 6, k=2, backend="reference")
        fast = build_polar_grid_tree(points, 0, 6, k=2, backend="numpy")
        assert_same_build(ref, fast)

    def test_connected_occupancy_parity(self):
        # An annulus cloud leaves inner rings empty -> the relaxed
        # parent-chain wiring, which the vectorised path must replicate.
        rng = np.random.default_rng(7)
        theta = rng.uniform(0, 2 * np.pi, 250)
        rho = rng.uniform(0.8, 1.0, 250)
        points = np.column_stack([rho * np.cos(theta), rho * np.sin(theta)])
        points[0] = (0.0, 0.0)
        ref = build_polar_grid_tree(
            points, 0, 6, occupancy="connected", backend="reference"
        )
        fast = build_polar_grid_tree(
            points, 0, 6, occupancy="connected", backend="numpy"
        )
        assert_same_build(ref, fast)

    def test_env_var_selects_backend(self, monkeypatch):
        points = unit_disk(60, seed=9)
        monkeypatch.setenv(BACKEND_ENV, "reference")
        ref = build_polar_grid_tree(points, 0, 6)
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        fast = build_polar_grid_tree(points, 0, 6)
        assert_same_build(ref, fast)


class TestBisectionDifferential:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("degree", [2, 6, 10])
    @pytest.mark.parametrize("n", [3, 20, 150])
    def test_matrix(self, dim, degree, n):
        points = cloud(n, dim, seed=17 * dim + n)
        ref = build_bisection_tree(points, 0, degree, backend="reference")
        for backend in ("numpy", "numba"):
            fast = build_bisection_tree(points, 0, degree, backend=backend)
            assert_same_build(ref, fast)

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_corpus(self, seed):
        inst = instance_from_seed(0, seed)
        ref = build_bisection_tree(
            inst.points, inst.source, inst.d_max, backend="reference"
        )
        fast = build_bisection_tree(
            inst.points, inst.source, inst.d_max, backend="numpy"
        )
        assert_same_build(ref, fast)

    def test_collinear_points(self):
        xs = np.linspace(-0.9, 0.9, 41)
        points = np.column_stack([xs, np.zeros_like(xs)])
        ref = build_bisection_tree(points, 20, 2, backend="reference")
        fast = build_bisection_tree(points, 20, 2, backend="numpy")
        assert_same_build(ref, fast)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaJit:
    def test_numba_resolves_to_itself(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend("numba") == "numba"

    def test_jit_kernels_match_reference(self):
        points = unit_disk(500, seed=4)
        ref = build_polar_grid_tree(points, 0, 6, backend="reference")
        jit = build_polar_grid_tree(points, 0, 6, backend="numba")
        assert_same_build(ref, jit)


def test_all_backends_listed():
    assert BACKENDS == ("reference", "numpy", "numba")
