"""Tests for the network-coordinate substrates (GNP, Vivaldi, delay models)."""

import numpy as np
import pytest

from repro.embedding.delay_models import (
    embedding_distortion,
    noisy_euclidean_delays,
    transit_stub_delays,
)
from repro.embedding.gnp import gnp_embedding, select_landmarks
from repro.embedding.vivaldi import vivaldi_embedding
from repro.geometry.points import pairwise_distances


class TestDelayModels:
    def test_noiseless_equals_distances(self, rng):
        pts = rng.normal(size=(20, 2))
        delays = noisy_euclidean_delays(pts, noise=0.0, seed=1)
        assert np.allclose(delays, pairwise_distances(pts))

    def test_noise_is_symmetric(self, rng):
        pts = rng.normal(size=(15, 2))
        delays = noisy_euclidean_delays(pts, noise=0.3, seed=2)
        assert np.allclose(delays, delays.T)
        assert np.allclose(np.diag(delays), 0.0)

    def test_noise_magnitude_scales(self, rng):
        pts = rng.normal(size=(30, 2))
        base = pairwise_distances(pts)
        small = noisy_euclidean_delays(pts, noise=0.05, seed=3)
        large = noisy_euclidean_delays(pts, noise=0.5, seed=3)
        iu = np.triu_indices(30, 1)
        err_small = np.abs(small[iu] - base[iu]) / base[iu]
        err_large = np.abs(large[iu] - base[iu]) / base[iu]
        assert err_small.mean() < err_large.mean()

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(ValueError, match="noise"):
            noisy_euclidean_delays(rng.normal(size=(5, 2)), noise=-0.1)

    def test_transit_stub_shape_and_symmetry(self):
        delays = transit_stub_delays(30, seed=4)
        assert delays.shape == (30, 30)
        assert np.allclose(delays, delays.T)
        assert np.allclose(np.diag(delays), 0.0)
        offdiag = delays[np.triu_indices(30, 1)]
        assert np.all(offdiag > 0)

    def test_transit_stub_triangle_inequality(self):
        """Shortest-path delays always satisfy the triangle inequality."""
        d = transit_stub_delays(15, seed=5)
        for i in range(15):
            for j in range(15):
                for k in range(15):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9

    def test_transit_stub_validates_params(self):
        with pytest.raises(ValueError):
            transit_stub_delays(1)
        with pytest.raises(ValueError):
            transit_stub_delays(10, n_transit=1)


class TestLandmarks:
    def test_selection_is_spread_out(self, rng):
        pts = rng.normal(size=(40, 2))
        delays = pairwise_distances(pts)
        landmarks = select_landmarks(delays, 5)
        assert len(set(landmarks.tolist())) == 5
        # Maximin landmarks should be pairwise farther apart than random
        # picks on average.
        lm = delays[np.ix_(landmarks, landmarks)]
        mean_lm = lm[np.triu_indices(5, 1)].mean()
        mean_all = delays[np.triu_indices(40, 1)].mean()
        assert mean_lm > mean_all

    def test_count_validation(self, rng):
        delays = pairwise_distances(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            select_landmarks(delays, 0)
        with pytest.raises(ValueError):
            select_landmarks(delays, 6)


class TestGNP:
    def test_recovers_noiseless_geometry(self, rng):
        """Distances must be reproduced (coordinates only up to rigid
        motion, so compare distance matrices)."""
        pts = rng.uniform(-1, 1, size=(25, 2))
        delays = pairwise_distances(pts)
        coords = gnp_embedding(delays, dim=2, seed=1)
        err = embedding_distortion(delays, coords)
        assert err["median_ratio_error"] < 0.02

    def test_noisy_embedding_reasonable(self, rng):
        pts = rng.uniform(-1, 1, size=(30, 2))
        delays = noisy_euclidean_delays(pts, noise=0.1, seed=2)
        coords = gnp_embedding(delays, dim=2, seed=2)
        err = embedding_distortion(delays, coords)
        assert err["median_ratio_error"] < 0.2

    def test_3d_embedding(self, rng):
        pts = rng.uniform(-1, 1, size=(20, 3))
        delays = pairwise_distances(pts)
        coords = gnp_embedding(delays, dim=3, seed=3)
        assert coords.shape == (20, 3)
        assert embedding_distortion(delays, coords)["median_ratio_error"] < 0.05

    def test_input_validation(self):
        with pytest.raises(ValueError, match="square"):
            gnp_embedding(np.zeros((3, 4)))
        bad = np.ones((3, 3))
        with pytest.raises(ValueError, match="symmetric"):
            gnp_embedding(bad + np.triu(np.ones((3, 3))))
        with pytest.raises(ValueError, match="negative"):
            gnp_embedding(-np.ones((3, 3)) + np.eye(3))

    def test_deterministic_with_seed(self, rng):
        pts = rng.uniform(-1, 1, size=(15, 2))
        delays = pairwise_distances(pts)
        a = gnp_embedding(delays, dim=2, seed=9)
        b = gnp_embedding(delays, dim=2, seed=9)
        assert np.allclose(a, b)


class TestVivaldi:
    def test_reduces_embedding_error(self, rng):
        pts = rng.uniform(-1, 1, size=(30, 2))
        delays = pairwise_distances(pts)
        rough = vivaldi_embedding(delays, dim=2, rounds=2, seed=4)
        refined = vivaldi_embedding(delays, dim=2, rounds=200, seed=4)
        err_rough = embedding_distortion(delays, rough)["stress"]
        err_refined = embedding_distortion(delays, refined)["stress"]
        assert err_refined < err_rough
        assert err_refined < 0.1

    def test_output_centred(self, rng):
        pts = rng.uniform(0, 10, size=(20, 2))
        coords = vivaldi_embedding(pairwise_distances(pts), seed=5)
        assert np.allclose(coords.mean(axis=0), 0.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            vivaldi_embedding(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="rounds"):
            vivaldi_embedding(np.zeros((3, 3)), rounds=0)
        with pytest.raises(ValueError, match="step"):
            vivaldi_embedding(np.zeros((3, 3)), step=2.0)


class TestEndToEnd:
    def test_embed_then_build_tree(self):
        """The full paper pipeline: delays -> coordinates -> tree, scored
        on the true delays."""
        from repro.core.builder import build_polar_grid_tree

        delays = transit_stub_delays(60, seed=6)
        coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=6)
        result = build_polar_grid_tree(coords, 0, 6)
        result.tree.validate(max_out_degree=6)

        # True worst delay through the tree must be within a sane factor
        # of the best possible single hop (the farthest direct delay).
        parent = result.tree.parent
        worst = 0.0
        for node in range(60):
            total, walk = 0.0, node
            while walk != 0:
                total += delays[walk, int(parent[walk])]
                walk = int(parent[walk])
            worst = max(worst, total)
        assert worst <= 6.0 * delays[0].max()

    def test_distortion_metric_sanity(self, rng):
        pts = rng.normal(size=(10, 2))
        delays = pairwise_distances(pts)
        perfect = embedding_distortion(delays, pts)
        assert perfect["median_ratio_error"] == pytest.approx(0.0, abs=1e-12)
        assert perfect["stress"] == pytest.approx(0.0, abs=1e-12)

    def test_distortion_shape_check(self, rng):
        with pytest.raises(ValueError):
            embedding_distortion(np.zeros((3, 3)), rng.normal(size=(4, 2)))
