"""Deeper d-dimensional grid checks: d >= 5, codec fuzz, CDF tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_polar_grid_tree
from repro.core.grid_nd import PolarGridND
from repro.geometry.polar import SphericalTransform
from repro.geometry.regions import Ball
from repro.workloads.generators import unit_ball


class TestHighDimensions:
    @pytest.mark.parametrize("dim", [5, 6])
    def test_transform_roundtrip_uses_cdf_tables(self, dim, rng):
        """d >= 4 polar angles go through the tabulated sin^m CDFs."""
        tr = SphericalTransform(dim)
        pts = rng.normal(size=(100, dim))
        rho, t = tr.transform(pts, np.zeros(dim))
        rebuilt = tr.direction(t) * rho[:, None]
        assert np.allclose(rebuilt, pts, atol=1e-5)

    @pytest.mark.parametrize("dim", [5, 6])
    def test_equal_measure_bins_high_d(self, dim, rng):
        tr = SphericalTransform(dim)
        pts = rng.normal(size=(30_000, dim))
        _rho, t = tr.transform(pts, np.zeros(dim))
        for axis in range(dim - 1):
            hist, _ = np.histogram(t[:, axis], bins=4, range=(0, 1))
            assert hist.min() > 30_000 / 4 * 0.85, (axis, hist)

    def test_5d_build_full_and_binary(self):
        points = unit_ball(1_500, dim=5, seed=1)
        full = build_polar_grid_tree(points, 0, (1 << 5) + 2)
        full.tree.validate(max_out_degree=34)
        binary = build_polar_grid_tree(points, 0, 2)
        binary.tree.validate(max_out_degree=2)

    def test_6d_build(self):
        points = unit_ball(800, dim=6, seed=2)
        result = build_polar_grid_tree(points, 0, 2)
        result.tree.validate(max_out_degree=2)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        assert result.radius >= farthest - 1e-9


class TestCodecFuzz:
    @given(
        st.integers(2, 6),
        st.integers(1, 10),
        st.integers(0, 1 << 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_cell_codec_roundtrip_fuzz(self, dim, ring, raw):
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=10)
        cell = raw % grid.cells_in_ring(ring)
        bins = grid.cell_bins(ring, cell)
        assert grid.cell_from_bins(ring, bins) == cell
        gid = int(grid.global_id(ring, cell))
        assert grid.ring_of_global(gid) == (ring, cell)
        if ring >= 1:
            parent = grid.parent_cell(ring, cell)
            assert cell in [c for _r, c in grid.child_cells(*parent)]

    @given(st.integers(2, 5), st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_parent_cells_vectorised_consistency(self, dim, ring):
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=9)
        count = grid.cells_in_ring(ring)
        cells = np.arange(min(count, 64))
        parents = grid.parent_cells(ring, cells)
        for c, p in zip(cells.tolist(), parents.tolist()):
            assert grid.parent_cell(ring, c) == (ring - 1, p)


class TestAssignmentConsistency:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    def test_assigned_cell_boxes_contain_points(self, dim, rng):
        """Every point's assigned cell's t-box actually contains its t."""
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=5)
        pts = Ball(dim=dim).sample(500, rng)
        rho, t = grid.transform.transform(pts, np.zeros(dim))
        ring, cell = grid.assign(rho, t)
        for i in range(0, 500, 17):
            box = grid.cell_t_box(int(ring[i]), int(cell[i]))
            for axis, (lo, hi) in enumerate(box):
                assert lo - 1e-12 <= t[i, axis] < hi + 1e-12, (i, axis)

    @pytest.mark.parametrize("dim", [3, 5])
    def test_radial_assignment_in_bounds(self, dim, rng):
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=6)
        pts = Ball(dim=dim).sample(400, rng)
        rho, t = grid.transform.transform(pts, np.zeros(dim))
        ring, _ = grid.assign(rho, t)
        radii = grid.ring_radii()
        for i in range(0, 400, 13):
            r = int(ring[i])
            hi = radii[r]
            lo = 0.0 if r == 0 else radii[r - 1]
            assert lo - 1e-6 <= rho[i] <= hi + 1e-6, i
