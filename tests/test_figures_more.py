"""Additional figure/report plumbing tests (options, edge cases)."""

import pytest

from repro.experiments.figures import FigureData, figure5, figure8, sweep
from repro.experiments.reporting import ascii_chart, format_table


class TestFigureData:
    def test_render_includes_name_and_title(self):
        fig = FigureData(
            name="Figure X",
            title="something",
            xs=[10, 100],
            series={"s": [1.0, 2.0]},
        )
        out = fig.render()
        assert "Figure X: something" in out

    def test_table_lists_all_series(self):
        fig = FigureData(
            name="F",
            title="t",
            xs=[1, 2],
            series={"a": [1.0, 2.0], "b": [3.0, 4.0]},
            log_x=False,
        )
        table = fig.table()
        assert "a" in table and "b" in table
        assert "3.000" in table

    def test_custom_chart_dimensions(self):
        fig = FigureData(
            name="F", title="t", xs=[10, 100], series={"s": [1.0, 2.0]}
        )
        out = fig.render(width=30, height=6)
        longest = max(len(line) for line in out.splitlines())
        assert longest <= 30 + 12  # plot width plus the y-label gutter


class TestSweepReuse:
    def test_one_sweep_feeds_multiple_figures(self):
        results = sweep(sizes=(100, 500), trials=2, degrees=(6, 2), seed=9)
        fig = figure5(results=results)
        assert fig.xs == [100, 500]
        # The sweep is keyed by (n, degree); figure5 reads both degrees.
        assert len(fig.series["out-degree 2"]) == 2

    def test_sweep_keys(self):
        results = sweep(sizes=(100,), trials=1, degrees=(6,), seed=10)
        assert set(results) == {(100, 6)}
        row = results[(100, 6)]
        assert row.n == 100 and row.max_out_degree == 6

    def test_figure8_uses_3d(self):
        fig = figure8(sizes=(100,), trials=1, seed=11)
        assert "3-D" in fig.title


class TestReportingEdgeCases:
    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_format_table_precision(self):
        out = format_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out
        assert "1.23" not in out

    def test_ascii_chart_single_point_series(self):
        out = ascii_chart([10], {"s": [5.0]})
        assert "*" in out

    def test_ascii_chart_skips_none(self):
        out = ascii_chart([10, 100], {"s": [1.0, None]}, log_x=True)
        # One plotted marker plus the one in the legend ("* s").
        assert out.count("*") == 2

    def test_ascii_chart_many_series_markers(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(4)}
        out = ascii_chart([10, 100], series)
        for marker in "*o+x":
            assert marker in out

    def test_ascii_chart_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_chart([], {})
