"""Tests for SVG figure rendering."""

import re

import pytest

from repro.experiments.figures import FigureData
from repro.experiments.svg_charts import (
    _nice_ticks,
    figure_to_svg,
    save_figure_svg,
)


def sample_figure(log_x=True, with_none=False):
    series = {
        "alpha": [3.0, 2.0, 1.5, 1.2],
        "beta": [5.0, None if with_none else 3.5, 2.0, 1.5],
    }
    return FigureData(
        name="Figure T",
        title="test chart",
        xs=[100, 1_000, 10_000, 100_000],
        series=series,
        y_label="delay",
        log_x=log_x,
    )


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(1.05, 3.1)
        assert ticks[0] <= 1.05
        assert ticks[-1] >= 3.1

    def test_round_steps(self):
        ticks = _nice_ticks(0.0, 10.0)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2


class TestFigureToSvg:
    def test_well_formed(self):
        svg = figure_to_svg(sample_figure())
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Figure T" in svg
        assert "alpha" in svg and "beta" in svg
        assert "delay" in svg

    def test_marker_counts(self):
        svg = figure_to_svg(sample_figure())
        # 2 series x 4 points.
        assert svg.count("<circle") == 8

    def test_none_breaks_the_line(self):
        continuous = figure_to_svg(sample_figure())
        broken = figure_to_svg(sample_figure(with_none=True))
        # A broken series needs an extra path segment and loses a marker.
        assert broken.count("<circle") == 7
        assert broken.count("<path") > continuous.count("<path") - 1

    def test_log_decade_labels(self):
        svg = figure_to_svg(sample_figure(log_x=True))
        assert "1e2" in svg and "1e5" in svg

    def test_linear_axis_labels_points(self):
        fig = sample_figure(log_x=False)
        svg = figure_to_svg(fig)
        assert "100000" in svg

    def test_coordinates_inside_canvas(self):
        svg = figure_to_svg(sample_figure(), width=500, height=300)
        coords = [
            float(v) for v in re.findall(r'c[xy]="([-\d.]+)"', svg)
        ]
        assert min(coords) >= 0
        assert max(coords) <= 500

    def test_empty_figure_rejected(self):
        fig = FigureData(name="x", title="y", xs=[], series={})
        with pytest.raises(ValueError, match="no data"):
            figure_to_svg(fig)

    def test_log_requires_positive(self):
        fig = FigureData(
            name="x", title="y", xs=[0, 10], series={"s": [1.0, 2.0]}
        )
        with pytest.raises(ValueError, match="positive"):
            figure_to_svg(fig)


class TestSaveAndCli:
    def test_save(self, tmp_path):
        path = save_figure_svg(sample_figure(), tmp_path / "fig.svg")
        assert path.read_text().startswith("<svg")

    def test_cli_fig_svg_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig6.svg"
        rc = main(
            [
                "fig6",
                "--sizes",
                "100",
                "500",
                "--trials",
                "1",
                "--svg",
                str(target),
            ]
        )
        assert rc == 0
        assert target.exists()
        assert "rings" in target.read_text()
