"""Tests for the pluggable cost-model layer (repro.costmodel)."""

import numpy as np
import pytest

from repro import costmodel as cm
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.service.cache import canonical_key
from repro.workloads.generators import unit_disk


@pytest.fixture
def tree():
    return build_polar_grid_tree(unit_disk(200, seed=4), 0, 6).tree


class TestModels:
    def test_euclidean_matches_root_delays(self, tree):
        delays = cm.effective_delays(tree, cm.EuclideanCost(), None)
        assert np.allclose(delays, tree.root_delays())

    def test_euclidean_ignores_load(self, tree):
        u = cm.link_utilization(tree, 0.9)
        assert np.allclose(
            cm.effective_delays(tree, "euclidean", u), tree.root_delays()
        )

    def test_congestion_idle_adds_per_hop_overheads(self, tree):
        model = cm.CongestionCost(switch_delay=0.01, proc_delay=0.005)
        delays = cm.effective_delays(tree, model, None)
        expected = tree.root_delays() + 0.015 * tree.depths()
        assert np.allclose(delays, expected)

    def test_congestion_scales_by_one_over_one_minus_u(self):
        # Source -> a -> b chain: closed-form check of the formula.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        tree = MulticastTree(
            points=points, parent=np.array([0, 0, 1]), root=0
        )
        model = cm.CongestionCost(switch_delay=0.1, proc_delay=0.1)
        u = np.array([0.0, 0.5, 0.75])
        delays = cm.effective_delays(tree, model, u)
        assert delays[1] == pytest.approx(1.2 / 0.5)
        assert delays[2] == pytest.approx(1.2 / 0.5 + 1.2 / 0.25)

    def test_utilization_clipped_at_ceiling(self, tree):
        model = cm.CongestionCost(max_utilization=0.9)
        u = np.full(tree.n, 5.0)  # hopelessly overcommitted
        delays = cm.effective_delays(tree, model, u)
        assert np.all(np.isfinite(delays))
        idle = cm.effective_delays(tree, model, None)
        mask = np.arange(tree.n) != tree.root
        assert np.allclose(delays[mask], idle[mask] / 0.1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            cm.CongestionCost(switch_delay=-1.0)
        with pytest.raises(ValueError):
            cm.CongestionCost(max_utilization=1.0)

    def test_get_cost_model_round_trips(self):
        model = cm.CongestionCost(switch_delay=0.2)
        again = cm.get_cost_model(cm.cost_model_key(model))
        assert again == model
        assert cm.get_cost_model("euclidean") == cm.EuclideanCost()
        with pytest.raises(ValueError):
            cm.get_cost_model("no-such-model")
        with pytest.raises(TypeError):
            cm.get_cost_model(42)
        with pytest.raises(ValueError):
            cm.get_cost_model({"switch_delay": 0.1})  # no name


class TestUplinkModel:
    def test_uplink_is_degree_times_load_over_capacity(self, tree):
        u = cm.uplink_utilization(tree, 0.5, capacity=10.0)
        assert np.allclose(u, tree.out_degrees() * 0.05)

    def test_edge_inherits_parent_uplink(self, tree):
        uplink = cm.uplink_utilization(tree, 0.5)
        edge = cm.edge_utilization(tree, uplink)
        assert edge[tree.root] == 0.0
        v = int(np.flatnonzero(np.arange(tree.n) != tree.root)[0])
        assert edge[v] == uplink[tree.parent[v]]

    def test_zero_load_means_idle(self, tree):
        assert cm.inflation_factor(
            tree, "congestion", cm.link_utilization(tree, 0.0)
        ) == pytest.approx(1.0)

    def test_inflation_grows_with_load(self, tree):
        model = cm.CongestionCost()
        factors = [
            cm.inflation_factor(tree, model, cm.link_utilization(tree, x))
            for x in (0.2, 0.5, 0.8)
        ]
        assert factors[0] > 1.0
        assert factors == sorted(factors)

    def test_hottest_uplink_is_linear_in_load(self, tree):
        assert cm.hottest_uplink(tree, 0.8) == pytest.approx(
            2 * cm.hottest_uplink(tree, 0.4)
        )
        assert cm.hottest_uplink(tree, 0.8) == pytest.approx(
            tree.max_out_degree() * 0.1
        )

    def test_validation(self, tree):
        with pytest.raises(ValueError):
            cm.uplink_utilization(tree, -0.1)
        with pytest.raises(ValueError):
            cm.uplink_utilization(tree, 0.5, capacity=0.0)
        with pytest.raises(ValueError):
            cm.edge_utilization(tree, np.zeros(3))
        with pytest.raises(ValueError):
            cm.effective_delays(tree, "congestion", np.zeros(3))


class TestAccumulateToRoot:
    def test_matches_manual_walk(self, tree):
        rng = np.random.default_rng(0)
        per_edge = rng.uniform(size=tree.n)
        totals = tree.accumulate_to_root(per_edge)
        assert totals[tree.root] == 0.0
        v = int(np.argmax(tree.depths()))
        expected = sum(per_edge[u] for u in tree.path_to_root(v)[:-1])
        assert totals[v] == pytest.approx(expected)

    def test_shape_checked(self, tree):
        with pytest.raises(ValueError):
            tree.accumulate_to_root(np.zeros(tree.n - 1))


class TestBuilderWiring:
    def test_extras_stamped(self):
        points = unit_disk(100, seed=2)
        result = build_polar_grid_tree(points, 0, 6, cost_model="congestion")
        assert result.extras["cost_model"]["name"] == "congestion"
        assert result.extras["effective_radius"] > result.tree.radius()
        plain = build_polar_grid_tree(points, 0, 6)
        assert "cost_model" not in plain.extras
        bis = build_bisection_tree(points, 0, 4, cost_model="congestion")
        assert bis.extras["effective_radius"] > bis.tree.radius()

    def test_cache_keys_distinguish_models(self):
        points = unit_disk(40, seed=3)
        base = {"max_out_degree": 6}
        k_euc = canonical_key(
            points, 0, "polar-grid",
            {**base, "cost_model": cm.EuclideanCost()},
        )
        k_con = canonical_key(
            points, 0, "polar-grid",
            {**base, "cost_model": cm.CongestionCost()},
        )
        k_con2 = canonical_key(
            points, 0, "polar-grid",
            {**base, "cost_model": cm.CongestionCost()},
        )
        assert k_euc != k_con
        assert k_con == k_con2
        assert canonical_key(points, 0, "polar-grid", base) not in (
            k_euc, k_con
        )


class TestOracleExtension:
    def test_clean_tree_passes_under_scaled_model(self, tree):
        from repro.analysis.oracle import check_tree

        u = cm.link_utilization(tree, 0.7)
        report = check_tree(
            tree, d_max=6, cost_model="congestion", utilization=u
        )
        assert report.ok
        assert "effective-delay-recompute" in report.checks
        assert report.stats["effective_radius"] > report.stats["radius"]

    def test_bad_utilization_flagged(self, tree):
        from repro.analysis.oracle import check_tree

        report = check_tree(
            tree, cost_model="congestion",
            utilization=np.full(tree.n, -1.0),
        )
        assert [v.code for v in report.violations] == ["UTILIZATION_RANGE"]
        report = check_tree(
            tree, cost_model="congestion", utilization=np.zeros(3)
        )
        assert [v.code for v in report.violations] == ["UTILIZATION_SHAPE"]

    def test_doubling_bug_would_be_caught(self, tree):
        # Simulate a pointer-doubling bug (totals off by 1%): the BFS
        # recomputation shares no code with doubling, so it must notice.
        from repro.analysis.oracle import check_tree

        tree.root_delays()  # populate the Euclidean caches honestly
        original = tree._double
        tree._double = lambda acc: original(acc) * 1.01
        try:
            report = check_tree(tree, cost_model="euclidean")
        finally:
            del tree._double
        codes = {v.code for v in report.violations}
        assert "EFFECTIVE_DELAY_MISMATCH" in codes
