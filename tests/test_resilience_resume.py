"""SIGKILL-and-resume acceptance test (ISSUE 4, satellite 4).

Drives ``tools/interruption_smoke.py``: a ``table1`` sweep under the
process engine is SIGKILLed mid-flight, resumed from its checkpoint
journal, and the merged TrialRecord stream must be identical to an
uninterrupted run — with the pre-kill journal bytes preserved as a
prefix and only the unfinished trials recomputed.

The heavy lifting (subprocess orchestration, polling, the kill) lives
in the tool so CI's interruption-smoke job and this test exercise the
same code path.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SMOKE = REPO / "tools" / "interruption_smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("interruption_smoke", SMOKE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


smoke = _load_smoke()


@pytest.mark.skipif(
    sys.platform == "win32", reason="needs POSIX process groups"
)
def test_sigkill_and_resume_matches_uninterrupted_run(tmp_path):
    rc = smoke.main(
        [
            "--sizes",
            "30",
            "40",
            "--trials",
            "2",
            "--sleep",
            "0.4",
            "--min-records",
            "2",
            "--workdir",
            str(tmp_path),
        ]
    )
    assert rc == 0

    # Independent re-check of the core claim, outside the tool's own
    # verdict: record streams match modulo wall-clock seconds.
    reference = smoke.journal_records(tmp_path / "reference.jsonl")
    victim = smoke.journal_records(tmp_path / "victim.jsonl")
    assert reference, "reference journal is empty"
    assert victim == reference

    # The victim's journal must still be a valid, resumable journal.
    header = json.loads(
        (tmp_path / "victim.jsonl").read_text().splitlines()[0]
    )
    assert header["type"] == "header"
    assert header["params"]["command"] == "table1"


def test_smoke_tool_reports_usage():
    result = subprocess.run(
        [sys.executable, str(SMOKE), "--help"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "resume" in result.stdout
