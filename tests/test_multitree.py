"""Tests for striped multi-tree delivery."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.overlay.multitree import MultiTree, build_striped_trees
from repro.workloads.generators import unit_disk


class TestConstruction:
    def test_basic_two_stripes(self):
        points = unit_disk(600, seed=1)
        multi = build_striped_trees(points, 0, total_budget=4, stripes=2)
        assert multi.stripes == 2
        assert multi.stripe_budget == 2
        multi.validate(total_budget=4)

    def test_three_stripes(self):
        points = unit_disk(400, seed=2)
        multi = build_striped_trees(points, 0, total_budget=6, stripes=3)
        multi.validate(total_budget=6)

    def test_single_stripe_is_plain_tree(self):
        points = unit_disk(300, seed=3)
        multi = build_striped_trees(points, 0, total_budget=6, stripes=1)
        plain = build_polar_grid_tree(points, 0, 6)
        assert np.array_equal(multi.trees[0].parent, plain.tree.parent)

    def test_budget_too_small(self):
        points = unit_disk(20, seed=4)
        with pytest.raises(ValueError, match="stripes"):
            build_striped_trees(points, 0, total_budget=3, stripes=2)

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            build_striped_trees(np.zeros((5, 3)), 0, 4, 2)

    def test_zero_stripes(self):
        with pytest.raises(ValueError, match="at least one"):
            build_striped_trees(unit_disk(10, seed=0), 0, 6, 0)


class TestSemantics:
    @pytest.fixture(scope="class")
    def multi(self):
        points = unit_disk(1_500, seed=5)
        return build_striped_trees(points, 0, total_budget=4, stripes=2)

    def test_stripes_differ(self, multi):
        """The rotation really diversifies the trees."""
        a, b = multi.trees
        assert not np.array_equal(a.parent, b.parent)

    def test_all_trees_share_points(self, multi):
        a, b = multi.trees
        assert a.points is b.points or np.array_equal(a.points, b.points)

    def test_rotation_preserves_delay_quality(self, multi):
        """Rotated builds are statistically identical in radius."""
        radii = multi.stripe_radii()
        assert max(radii) < 1.5 * min(radii)

    def test_completion_dominates_stripes(self, multi):
        completion = multi.completion_radius()
        assert completion >= max(multi.stripe_radii()) - 1e-12
        # Completion is per-node max, which can exceed any single
        # stripe radius only up to... it cannot: it is the max over
        # nodes of per-node maxima <= max over stripes of their radii.
        assert completion <= max(multi.stripe_radii()) + 1e-12

    def test_load_spreads_across_members(self, multi):
        """Two stripes should put clearly more members to work than one
        tree does."""
        single = build_polar_grid_tree(multi.trees[0].points, 0, 4).tree
        single_forwarding = np.count_nonzero(single.out_degrees()[1:] > 0)
        stats = multi.load_stats()
        multi_forwarding = stats["forwarding_fraction"] * (multi.n - 1)
        assert multi_forwarding > single_forwarding * 1.2

    def test_total_degree_budget(self, multi):
        assert multi.load_stats()["max_total_degree"] <= 4


class TestEmptyAndEdge:
    def test_empty_multitree(self):
        multi = MultiTree()
        assert multi.n == 0
        assert multi.completion_radius() == 0.0

    def test_tiny_group(self):
        points = unit_disk(3, seed=6)
        multi = build_striped_trees(points, 0, total_budget=4, stripes=2)
        multi.validate(total_budget=4)
