"""Tests for multi-group tree packing: allocator, builder, sessions.

Covers the degree-budget ledger (including a hypothesis property that
no admit/evict interleaving ever oversubscribes a host), the
``packed-polar-grid`` builder through the structural oracle across
dimensions and fan-outs, the aggregate ``check_packing`` oracle, the
session service API over real TCP (admit / evict / fetch / structured
``BudgetExhausted``), the 1.x deprecation shims, the uniform error
wire encoding, and the packing fuzz corpus + shrinker.
"""

import asyncio
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._service_errors import (
    DeadlineExceeded,
    ServiceError,
    ServiceOverload,
    UnknownGroup,
)
from repro.analysis.oracle import check_packing, check_tree
from repro.core.registry import build
from repro.core.tree import MulticastTree
from repro.packing import (
    BudgetExhausted,
    BudgetReceipt,
    DegreeBudgetAllocator,
    build_packed_polar_grid_tree,
)
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceClientError,
    TreeBuildService,
)
from repro.service.server import error_payload
from repro.service.session import SessionHandle
from repro.testing.fuzz import (
    check_packing_instance,
    packing_instance_from_seed,
    shrink_packing_instance,
)
from repro.workloads.generators import unit_ball, unit_disk


class TestAllocator:
    def test_reserve_then_release_restores_residual(self):
        alloc = DegreeBudgetAllocator(np.full(5, 4))
        usage = np.array([2, 0, 1, 0, 3])
        receipt = alloc.reserve("g0", usage)
        assert receipt.slots == 6
        assert receipt.hosts == (0, 2, 4)
        assert (alloc.residual() == np.array([2, 4, 3, 4, 1])).all()
        alloc.release("g0")
        assert (alloc.residual() == 4).all()
        assert alloc.live_groups() == []

    def test_reserve_is_all_or_nothing(self):
        alloc = DegreeBudgetAllocator(np.array([3, 3]))
        alloc.reserve("g0", np.array([3, 0]))
        before = alloc.residual()
        with pytest.raises(BudgetExhausted) as err:
            alloc.reserve("g1", np.array([1, 2]))
        assert (alloc.residual() == before).all()
        assert "g1" not in alloc.live_groups()
        exc = err.value
        assert exc.group == "g1"
        assert exc.host == 0
        assert exc.requested == 1
        assert exc.available == 0
        assert exc.cap == 3
        assert exc.fields["requested"] == 1

    def test_budget_exhausted_is_a_service_error(self):
        assert issubclass(BudgetExhausted, ServiceError)
        assert issubclass(BudgetExhausted, RuntimeError)

    def test_duplicate_group_rejected(self):
        alloc = DegreeBudgetAllocator(np.full(3, 2))
        alloc.reserve("g0", np.array([1, 0, 0]))
        with pytest.raises(ValueError, match="already holds"):
            alloc.reserve("g0", np.array([0, 1, 0]))

    def test_release_unknown_group_is_structured(self):
        alloc = DegreeBudgetAllocator(np.full(3, 2))
        with pytest.raises(UnknownGroup):
            alloc.release("ghost")

    def test_usage_shape_and_sign_validated(self):
        alloc = DegreeBudgetAllocator(np.full(3, 2))
        with pytest.raises(ValueError, match="shape"):
            alloc.reserve("g0", np.array([1, 1]))
        with pytest.raises(ValueError, match="non-negative"):
            alloc.reserve("g0", np.array([1, -1, 0]))

    def test_stats_track_reservations(self):
        alloc = DegreeBudgetAllocator(np.full(4, 3))
        alloc.reserve("a", np.array([0, 3, 1, 0]))
        stats = alloc.stats()
        assert stats["reserved_slots"] == 4
        assert stats["live_groups"] == 1
        assert stats["hottest_host"] == 1

    def test_receipt_round_trips_through_dict(self):
        receipt = BudgetReceipt(group_id="g", hosts=(1, 4), slots=5)
        assert BudgetReceipt.from_dict(receipt.to_dict()) == receipt

    @settings(max_examples=60, deadline=None)
    @given(
        caps=st.lists(st.integers(0, 6), min_size=2, max_size=8),
        events=st.lists(
            st.tuples(
                st.booleans(),  # True = admit, False = evict
                st.integers(0, 5),  # group number
                st.integers(0, 40),  # usage-vector seed
            ),
            max_size=30,
        ),
    )
    def test_no_interleaving_oversubscribes(self, caps, events):
        """Reserved totals never exceed caps under any admit/evict mix."""
        caps = np.asarray(caps, dtype=np.int64)
        alloc = DegreeBudgetAllocator(caps)
        mirror: dict[str, np.ndarray] = {}
        for is_admit, group_no, usage_seed in events:
            group = f"g{group_no}"
            if is_admit and group not in mirror:
                rng = np.random.default_rng(usage_seed)
                usage = rng.integers(0, 4, size=caps.size)
                try:
                    alloc.reserve(group, usage)
                except BudgetExhausted:
                    continue
                mirror[group] = usage
            elif not is_admit and group in mirror:
                alloc.release(group)
                del mirror[group]
            total = sum(mirror.values(), np.zeros_like(caps))
            assert (total <= caps).all()
            assert (alloc.residual() == caps - total).all()
            assert sorted(mirror) == alloc.live_groups()


class TestPackedBuilder:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("degree", [4, 6, 10])
    def test_oracle_clean_across_dims_and_degrees(self, dim, degree):
        pts = (
            unit_disk(80, seed=3)
            if dim == 2
            else unit_ball(80, dim=3, seed=3)
        )
        out = build(pts, 0, "packed-polar-grid", max_out_degree=degree)
        report = check_tree(out.tree, d_max=degree)
        assert report.ok, report.render()
        assert out.builder == "packed-polar-grid"

    def test_budgets_bound_the_tree(self):
        pts = unit_disk(40, seed=1)
        budgets = np.full(40, 2)
        budgets[0] = 3
        out = build(
            pts, 0, "packed-polar-grid", max_out_degree=10, budgets=budgets
        )
        assert (out.tree.out_degrees() <= budgets).all()

    def test_source_without_slots_is_budget_exhausted(self):
        pts = unit_disk(10, seed=0)
        budgets = np.full(10, 4)
        budgets[0] = 1
        with pytest.raises(BudgetExhausted) as err:
            build_packed_polar_grid_tree(pts, 0, budgets=budgets)
        assert err.value.host == 0

    def test_aggregate_shortfall_is_budget_exhausted(self):
        pts = unit_disk(30, seed=0)
        budgets = np.zeros(30, dtype=np.int64)
        budgets[:3] = 4  # 12 forwarder slots for 29 edges: infeasible
        with pytest.raises(BudgetExhausted) as err:
            build_packed_polar_grid_tree(pts, 0, budgets=budgets)
        assert err.value.host is None
        assert err.value.requested >= err.value.available


class TestCheckPacking:
    def _two_groups(self):
        pts = unit_disk(30, seed=5)
        trees, members = [], []
        for lo, hi in ((0, 20), (10, 30)):
            idx = np.arange(lo, hi)
            out = build(pts[idx], 0, "packed-polar-grid", max_out_degree=4)
            trees.append(out.tree)
            members.append(idx)
        return trees, members

    def test_disjoint_budgets_pass(self):
        trees, members = self._two_groups()
        report = check_packing(trees, members, 8, n_hosts=30)
        assert report.ok, report.render()
        assert report.stats["live_groups"] == 2
        assert report.stats["agg_max_degree"] <= 8

    def test_aggregate_cap_violation_names_host_and_groups(self):
        trees, members = self._two_groups()
        report = check_packing(
            trees, members, 1, n_hosts=30, groups=["a", "b"]
        )
        assert not report.ok
        assert any(v.code == "AGG_DEGREE_CAP" for v in report.violations)

    def test_member_validation(self):
        trees, members = self._two_groups()
        bad = members[1].copy()
        bad[0] = bad[1]  # duplicate
        report = check_packing(trees, [members[0], bad], 8, n_hosts=30)
        assert any(v.code == "MEMBER_DUP" for v in report.violations)
        report = check_packing(
            trees, [members[0], members[1] + 100], 8, n_hosts=30
        )
        assert any(v.code == "MEMBER_RANGE" for v in report.violations)
        report = check_packing(
            trees, [members[0], members[1][:-1]], 8, n_hosts=30
        )
        assert any(v.code == "MEMBER_COUNT" for v in report.violations)

    def test_group_labels_prefix_tree_violations(self):
        pts = unit_disk(12, seed=2)
        out = build(pts, 0, "packed-polar-grid", max_out_degree=6)
        report = check_packing(
            [out.tree],
            [np.arange(12)],
            8,
            n_hosts=12,
            d_maxes=[1],  # impossible bound: forces DEGREE violations
            groups=["tenant-x"],
        )
        assert not report.ok
        assert any(
            "tenant-x" in v.message for v in report.violations
        ), report.render()


class TestSessionService:
    def test_admit_reserves_and_evict_releases(self):
        pts = unit_disk(50, seed=9)
        with BackgroundServer(population=pts, host_caps=6) as server:
            with ServiceClient(port=server.port) as client:
                handle = client.admit(
                    "g0",
                    members=list(range(25)),
                    params={"max_out_degree": 4},
                )
                assert isinstance(handle, SessionHandle)
                assert handle.live
                assert handle.receipt["slots"] == 24
                stats = client.stats()
                assert stats["sessions"]["live"] == 1
                assert stats["packing"]["reserved_slots"] == 24

                listed = client.sessions()
                assert [s["group"] for s in listed] == ["g0"]

                summary = client.evict(handle)
                assert summary["group"] == "g0"
                assert not handle.live
                stats = client.stats()
                assert stats["sessions"]["live"] == 0
                assert stats["packing"]["reserved_slots"] == 0
                assert stats["sessions"]["evicted"] == 1

    def test_budget_exhausted_crosses_the_wire_structured(self):
        pts = unit_disk(20, seed=9)
        with BackgroundServer(population=pts, host_caps=2) as server:
            with ServiceClient(port=server.port) as client:
                client.admit("g0", params={"max_out_degree": 2})
                with pytest.raises(ServiceClientError) as err:
                    client.admit("g1", params={"max_out_degree": 2})
                exc = err.value
                assert exc.error_type == "BudgetExhausted"
                assert exc.fields["group"] == "g1"
                assert exc.fields["requested"] > exc.fields["available"]
                # 1.x flat mirror: fields also at the error's top level.
                assert exc.error["requested"] == exc.fields["requested"]
                stats = client.stats()
                assert stats["sessions"]["rejected"] == 1

    def test_session_fetch_is_a_cache_hit(self):
        pts = unit_disk(30, seed=9)
        with BackgroundServer(population=pts, host_caps=8) as server:
            with ServiceClient(port=server.port) as client:
                handle = client.admit("g0", params={"max_out_degree": 6})
                reply = client.build(handle, include_tree=True)
                assert reply["cached"]
                assert reply["key"] == handle.key
                tree = MulticastTree(
                    np.asarray(reply["points"]),
                    np.asarray(reply["parent"], dtype=np.int64),
                    reply["root"],
                ).validate()
                assert check_tree(tree, d_max=6).ok

    def test_admit_without_population_is_structured(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceClientError) as err:
                    client.admit("g0")
                assert err.value.error_type == "PackingUnavailable"

    def test_duplicate_and_unknown_groups_are_structured(self):
        pts = unit_disk(20, seed=9)
        with BackgroundServer(population=pts, host_caps=8) as server:
            with ServiceClient(port=server.port) as client:
                handle = client.admit("g0", params={"max_out_degree": 6})
                with pytest.raises(ServiceClientError) as err:
                    client.admit("g0", params={"max_out_degree": 6})
                assert err.value.error_type == "ValueError"
                with pytest.raises(ServiceClientError) as err:
                    with pytest.warns(DeprecationWarning):
                        client.evict("ghost")
                assert err.value.error_type == "UnknownGroup"
                client.evict(handle)

    def test_raw_group_id_evict_warns(self):
        pts = unit_disk(20, seed=9)
        with BackgroundServer(population=pts, host_caps=8) as server:
            with ServiceClient(port=server.port) as client:
                client.admit("g0", params={"max_out_degree": 6})
                with pytest.warns(DeprecationWarning, match="SessionHandle"):
                    client.evict("g0")

    def test_raw_key_update_on_session_entry_warns(self):
        pts = unit_disk(20, seed=9)
        with BackgroundServer(population=pts, host_caps=8) as server:
            with ServiceClient(port=server.port) as client:
                handle = client.admit("g0", params={"max_out_degree": 6})
                events = [{"action": "join", "coords": [0.5, 0.5]}]
                with pytest.warns(DeprecationWarning, match="raw key"):
                    client.update(handle.key, events)

    def test_handle_update_repoints_key_silently(self):
        pts = unit_disk(20, seed=9)
        with BackgroundServer(population=pts, host_caps=8) as server:
            with ServiceClient(port=server.port) as client:
                handle = client.admit("g0", params={"max_out_degree": 6})
                old_key = handle.key
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    reply = client.update(
                        handle, [{"action": "join", "coords": [0.5, 0.5]}]
                    )
                assert handle.key == reply["key"] != old_key

    def test_sessionless_raw_paths_stay_silent(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    reply = client.build(
                        workload={"kind": "unit-disk", "n": 40, "seed": 0},
                        params={"max_out_degree": 6},
                    )
                    client.update(
                        reply["key"],
                        [{"action": "join", "coords": [0.1, 0.2]}],
                    )


class TestServiceValidation:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError, match=r"\(N, d\)"):
            TreeBuildService(population=np.zeros(5))

    def test_caps_without_population_rejected(self):
        with pytest.raises(ValueError, match="population"):
            TreeBuildService(host_caps=4)

    def test_admit_member_validation(self):
        pts = unit_disk(10, seed=0)
        service = TreeBuildService(population=pts, host_caps=8)
        with pytest.raises(ValueError, match="not a member"):
            asyncio.run(service.admit("g0", members=[0, 1], source=9))
        with pytest.raises(ValueError, match="population indices"):
            asyncio.run(service.admit("g0", members=[0, 99]))
        with pytest.raises(ValueError, match="non-empty"):
            asyncio.run(service.admit(""))


class TestErrorWireFormat:
    def test_service_error_uniform_encoding(self):
        exc = ServiceOverload(pending=7, limit=4)
        payload = error_payload(exc)
        assert payload["type"] == "ServiceOverload"
        assert payload["fields"] == {"pending": 7, "limit": 4}
        # 1.x mirror: fields flattened to the top level.
        assert payload["pending"] == 7
        wire = exc.to_wire()
        assert wire["fields"] == {"pending": 7, "limit": 4}

    def test_deadline_and_budget_errors_encode_fields(self):
        exc = DeadlineExceeded(key="k" * 16, deadline=0.5)
        assert error_payload(exc)["fields"]["deadline"] == 0.5
        exc = BudgetExhausted(
            "no room",
            group="g",
            host=3,
            requested=4,
            available=1,
            cap=6,
        )
        payload = error_payload(exc)
        assert payload["fields"]["host"] == 3
        assert payload["cap"] == 6

    def test_non_service_errors_still_encode(self):
        payload = error_payload(ValueError("nope"))
        assert payload["type"] == "ValueError"
        assert payload["message"] == "nope"


class TestPackingFuzz:
    def test_corpus_is_deterministic(self):
        a = packing_instance_from_seed(11, 3)
        b = packing_instance_from_seed(11, 3)
        assert a.events == b.events
        assert np.array_equal(a.points, b.points)
        assert a.description

    def test_seeded_corpus_is_clean(self):
        for i in range(6):
            inst = packing_instance_from_seed(23, i)
            violations = check_packing_instance(
                inst.points, inst.cap, inst.events
            )
            assert violations == [], (i, violations)

    def test_infeasible_events_are_skipped_not_findings(self):
        pts = unit_disk(12, seed=0)
        events = [
            {"action": "evict", "group": "never-admitted"},
            {
                "action": "admit",
                "group": "g0",
                "members": list(range(12)),
                "source": 0,
                "degree": 6,
            },
            {  # duplicate admit of a live group: skipped at replay
                "action": "admit",
                "group": "g0",
                "members": [0, 1, 2],
                "source": 0,
                "degree": 6,
            },
        ]
        assert check_packing_instance(pts, 8, events) == []

    def test_oversubscribed_admits_reject_cleanly(self):
        # Cap 1 cannot host a backbone: every admit is a builder
        # rejection, which is expected behaviour — not a finding.
        pts = unit_disk(15, seed=1)
        events = [
            {
                "action": "admit",
                "group": f"g{i}",
                "members": list(range(15)),
                "source": 0,
                "degree": 10,
            }
            for i in range(3)
        ]
        assert check_packing_instance(pts, 1, events) == []

    def test_event_crash_is_a_finding_and_shrinks_to_it(self):
        pts = unit_disk(12, seed=0)
        good = {
            "action": "admit",
            "group": "g0",
            "members": list(range(12)),
            "source": 0,
            "degree": 6,
        }
        bad = {  # source is not a member: replay crashes on this event
            "action": "admit",
            "group": "g1",
            "members": [0, 1, 2, 3],
            "source": 11,
            "degree": 6,
        }
        violations = check_packing_instance(pts, 8, [good, bad])
        assert violations[0]["code"] == "EVENT_ERROR"
        assert violations[0]["event"] == 1
        shrunk, kept = shrink_packing_instance(pts, 8, [good, bad])
        assert shrunk == [bad]  # the crashing event survives shrinking
        assert kept[0]["code"] == "EVENT_ERROR"


class TestPackingSweep:
    def test_small_sweep_passes_gates(self):
        from repro.experiments.packing import (
            packing_gate_failures,
            run_packing_sweep,
        )

        report = run_packing_sweep(
            n_hosts=60,
            cap=6,
            degree=6,
            group_size=24,
            seed=0,
            offered=(2, 4, 8),
        )
        assert packing_gate_failures(report) == []
        assert report["schema"] == "bench-packing/1"

    def test_smoke_tool_passes(self, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "packing_smoke",
            Path(__file__).resolve().parents[1]
            / "tools"
            / "packing_smoke.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main([]) == 0
        assert "packing smoke ok" in capsys.readouterr().out
