"""Tests for the grid-depth sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import DepthSweep, sweep_grid_depth


class TestDepthSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_grid_depth(n=2_000, span=2, trials=3, seed=0)

    def test_depth_window_around_auto(self, sweep):
        assert sweep.auto_k - 2 <= min(sweep.depths)
        assert max(sweep.depths) == sweep.auto_k + 2

    def test_deeper_than_feasible_is_flagged(self, sweep):
        """Depths above the automatic k violate occupancy (that is what
        makes the automatic k maximal)."""
        for k in sweep.depths:
            if k > sweep.auto_k:
                assert k in sweep.infeasible

    def test_delay_improves_toward_auto_k(self, sweep):
        """Among feasible depths, delay decreases monotonically with k —
        the reason the heuristic takes the largest feasible depth."""
        feasible = [
            (k, d) for k, d in zip(sweep.depths, sweep.delays) if d is not None
        ]
        delays = [d for _k, d in feasible]
        assert all(a > b for a, b in zip(delays, delays[1:]))

    def test_auto_choice_has_zero_regret(self, sweep):
        assert sweep.best_depth() == sweep.auto_k
        assert sweep.auto_choice_regret() == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="span"):
            sweep_grid_depth(n=100, span=0)

    def test_regret_helper_with_synthetic_data(self):
        sweep = DepthSweep(
            n=10,
            max_out_degree=6,
            auto_k=4,
            depths=(3, 4, 5),
            delays=(1.2, 1.1, 1.05),
            infeasible=(),
        )
        assert sweep.best_depth() == 5
        assert sweep.auto_choice_regret() == pytest.approx(1.1 / 1.05 - 1.0)
