"""Focused tests for the cell-wiring layer (core_network)."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.core_network import WiringError, wire_cells
from repro.core.grid import PolarGrid
from repro.workloads.generators import unit_disk


def wiring_inputs(points, k):
    """Prepare wire_cells inputs the way the builder does."""
    from repro.geometry.polar import SphericalTransform

    n = points.shape[0]
    tr = SphericalTransform(2)
    rho, t = tr.transform(points, points[0])
    grid = PolarGrid(
        center=points[0], r_min=0.0, r_max=float(rho.max()), k=k, transform=tr
    )
    receivers = np.arange(1, n)
    ring, cell = grid.assign(rho[receivers], t[receivers])
    gid = grid.global_id(ring, cell)
    order = np.lexsort((rho[receivers], gid))
    nodes = receivers[order]
    gids = gid[order]
    cuts = np.flatnonzero(np.diff(gids)) + 1
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [gids.shape[0]]])
    groups = [
        (int(gids[s]), nodes[s:e].tolist()) for s, e in zip(starts, ends)
    ]
    parent = np.full(n, -1, dtype=np.int64)
    parent[0] = 0
    return grid, groups, rho.tolist(), (t[:, 0].tolist(),), parent


class TestWireCells:
    def test_full_mode_wires_everyone(self):
        points = unit_disk(300, seed=60)
        grid, groups, rho, t_axes, parent = wiring_inputs(points, k=4)
        reps = wire_cells(grid, 0, groups, rho, t_axes, parent, binary=False)
        assert np.all(parent >= 0)
        assert reps.size == len([g for g, _m in groups if g != 0])

    def test_binary_mode_degree(self):
        points = unit_disk(300, seed=61)
        grid, groups, rho, t_axes, parent = wiring_inputs(points, k=4)
        wire_cells(grid, 0, groups, rho, t_axes, parent, binary=True)
        from repro.core.tree import MulticastTree

        tree = MulticastTree(points=points, parent=parent, root=0)
        tree.validate(max_out_degree=2)

    def test_invalid_k_raises_wiring_error(self):
        points = unit_disk(20, seed=62)
        # k=6 cannot be occupied by 19 receivers (needs 2^6-2 = 62 cells).
        grid, groups, rho, t_axes, parent = wiring_inputs(points, k=6)
        with pytest.raises(WiringError, match="occupancy"):
            wire_cells(grid, 0, groups, rho, t_axes, parent, binary=False)

    def test_representatives_carry_core_budget(self):
        """In full mode, only representatives (and the source) may exceed
        the bisection budget of 4 children."""
        points = unit_disk(600, seed=63)
        result = build_polar_grid_tree(points, 0, 6)
        degrees = result.tree.out_degrees()
        heavy = set(np.flatnonzero(degrees > 4).tolist())
        allowed = set(result.representatives.tolist()) | {0}
        assert heavy <= allowed

    def test_empty_inner_region_forwards_from_source(self):
        """All receivers far out: D0 is empty; ring-1 reps must attach
        directly to the source."""
        rng = np.random.default_rng(64)
        theta = rng.uniform(0, 2 * np.pi, 60)
        radius = rng.uniform(0.9, 1.0, 60)
        points = np.zeros((61, 2))
        points[1:, 0] = radius * np.cos(theta)
        points[1:, 1] = radius * np.sin(theta)
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)
        # The source feeds exactly the ring-1 representatives (D0 empty).
        assert result.tree.out_degrees()[0] <= 2


class TestCoreStructure:
    def test_representative_delays_form_core(self):
        points = unit_disk(2000, seed=65)
        result = build_polar_grid_tree(points, 0, 6)
        delays = result.tree.root_delays()
        assert result.core_delay == pytest.approx(
            float(delays[result.representatives].max())
        )

    def test_core_path_uses_representatives(self):
        """Each non-inner representative's parent chain passes only
        through representatives/forwarders, never through bisection-only
        nodes of other cells (full mode: parents of reps are reps)."""
        points = unit_disk(1500, seed=66)
        result = build_polar_grid_tree(points, 0, 6)
        rep_set = set(result.representatives.tolist()) | {0}
        for rep in result.representatives.tolist():
            parent = int(result.tree.parent[rep])
            assert parent in rep_set

    def test_binary_mode_core_hops(self):
        """Degree-2 wiring: a representative's parent is its parent
        cell's forwarder, which lives in the parent cell (or is the
        source)."""
        points = unit_disk(1200, seed=67)
        result = build_polar_grid_tree(points, 0, 2)
        result.tree.validate(max_out_degree=2)
        # The radius should exceed the degree-6 radius only modestly
        # (Figure 5's "overhead roughly doubles" claim, loosely).
        six = build_polar_grid_tree(points, 0, 6)
        assert result.radius < six.radius * 2.5
