"""Tests for build_polar_grid_tree — the end-to-end Algorithm Polar_Grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_polar_grid_tree
from repro.core.core_network import WiringError
from repro.workloads.generators import (
    annulus_points,
    clustered_disk,
    nonuniform_disk,
    rectangle_points,
    unit_ball,
    unit_disk,
)


class TestBasicInvariants:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 50, 1000])
    @pytest.mark.parametrize("degree", [6, 2])
    def test_valid_spanning_tree(self, n, degree):
        points = unit_disk(n, seed=n * 7 + degree)
        result = build_polar_grid_tree(points, 0, degree)
        result.tree.validate(max_out_degree=degree)
        assert result.tree.n == n
        assert result.tree.root == 0

    @pytest.mark.parametrize("degree", [7, 10, 100])
    def test_higher_budgets_accepted(self, degree):
        points = unit_disk(300, seed=1)
        result = build_polar_grid_tree(points, 0, degree)
        result.tree.validate(max_out_degree=degree)

    @pytest.mark.parametrize("degree", [3, 4, 5])
    def test_intermediate_budgets_use_binary(self, degree):
        """Budgets below 2^d + 2 fall back to the out-degree-2 variant,
        which never exceeds 2."""
        points = unit_disk(300, seed=2)
        result = build_polar_grid_tree(points, 0, degree)
        result.tree.validate(max_out_degree=2)

    def test_rejects_degree_below_2(self):
        with pytest.raises(ValueError, match="at least 2"):
            build_polar_grid_tree(unit_disk(10, seed=0), 0, 1)

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError, match="source"):
            build_polar_grid_tree(unit_disk(10, seed=0), 10, 6)

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError, match="dimension"):
            build_polar_grid_tree(np.zeros((5, 1)), 0, 6)

    def test_nonzero_source_index(self):
        points = unit_disk(200, seed=3)
        # Move the source into the middle of the array.
        points = np.roll(points, 57, axis=0)
        result = build_polar_grid_tree(points, 57, 6)
        result.tree.validate(max_out_degree=6)
        assert result.tree.root == 57

    def test_deterministic(self):
        points = unit_disk(500, seed=11)
        a = build_polar_grid_tree(points, 0, 6)
        b = build_polar_grid_tree(points, 0, 6)
        assert np.array_equal(a.tree.parent, b.tree.parent)


class TestDegenerateInputs:
    def test_single_node(self):
        result = build_polar_grid_tree(np.zeros((1, 2)), 0, 6)
        assert result.tree.n == 1
        assert result.rings is None

    def test_all_coincident(self):
        points = np.ones((40, 2))
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)
        assert result.tree.radius() == 0.0

    def test_all_coincident_degree2(self):
        points = np.ones((40, 2))
        result = build_polar_grid_tree(points, 0, 2)
        result.tree.validate(max_out_degree=2)

    def test_two_coincident_plus_spread(self):
        points = unit_disk(20, seed=4)
        points[3] = points[0]  # a receiver on top of the source
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)

    def test_collinear_points(self):
        n = 64
        points = np.zeros((n, 2))
        points[:, 0] = np.linspace(0, 1, n)
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)
        # Everything is on a ray: the radius is at least the farthest point.
        assert result.radius >= 1.0 - 1e-9


class TestMetrics:
    def test_radius_at_least_lower_bound(self):
        points = unit_disk(2000, seed=5)
        result = build_polar_grid_tree(points, 0, 6)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        assert result.radius >= farthest - 1e-9

    def test_delay_within_eq7_bound(self):
        """Theorem-level check: the built tree obeys equation (7)."""
        for seed in range(10):
            points = unit_disk(1500, seed=seed)
            for degree in (6, 2):
                result = build_polar_grid_tree(points, 0, degree)
                assert result.radius <= result.upper_bound + 1e-9, (
                    seed,
                    degree,
                )

    def test_core_delay_at_most_radius(self):
        points = unit_disk(800, seed=6)
        result = build_polar_grid_tree(points, 0, 6)
        assert result.core_delay <= result.radius + 1e-12

    def test_rings_grow_with_n(self):
        k_small = build_polar_grid_tree(unit_disk(100, seed=7), 0, 6).rings
        k_large = build_polar_grid_tree(unit_disk(20_000, seed=7), 0, 6).rings
        assert k_large >= k_small + 3

    def test_convergence_toward_optimal(self):
        """The asymptotic-optimality trend: the delay/lower-bound ratio
        shrinks as n grows (Theorem 2's observable consequence)."""
        ratios = []
        for n in (200, 2000, 20000):
            points = unit_disk(n, seed=13)
            result = build_polar_grid_tree(points, 0, 6)
            farthest = float(np.linalg.norm(points - points[0], axis=1).max())
            ratios.append(result.radius / farthest)
        assert ratios[2] < ratios[1] < ratios[0]
        assert ratios[2] < 1.15

    def test_explicit_k_respected(self):
        points = unit_disk(1000, seed=8)
        result = build_polar_grid_tree(points, 0, 6, k=4)
        assert result.rings == 4

    def test_infeasible_k_raises(self):
        points = unit_disk(30, seed=9)
        with pytest.raises(WiringError, match="occupancy"):
            build_polar_grid_tree(points, 0, 6, k=8)

    def test_no_2d_bound_in_3d(self):
        points = unit_ball(500, dim=3, seed=10)
        result = build_polar_grid_tree(points, 0, 10)
        assert result.upper_bound is None


class TestHigherDimensions:
    @pytest.mark.parametrize("dim,full_degree", [(3, 10), (4, 18)])
    def test_full_construction(self, dim, full_degree):
        points = unit_ball(800, dim=dim, seed=11)
        result = build_polar_grid_tree(points, 0, full_degree)
        result.tree.validate(max_out_degree=full_degree)

    @pytest.mark.parametrize("dim", [3, 4])
    def test_binary_construction(self, dim):
        points = unit_ball(800, dim=dim, seed=12)
        result = build_polar_grid_tree(points, 0, 2)
        result.tree.validate(max_out_degree=2)

    def test_3d_converges(self):
        r_small = build_polar_grid_tree(
            unit_ball(300, dim=3, seed=1), 0, 10
        ).radius
        r_large = build_polar_grid_tree(
            unit_ball(30_000, dim=3, seed=1), 0, 10
        ).radius
        assert r_large < r_small


class TestWorkloadRobustness:
    def test_annulus_workload(self):
        points = annulus_points(2000, seed=14)
        plain = build_polar_grid_tree(points, 0, 6)
        fitted = build_polar_grid_tree(points, 0, 6, fit_annulus=True)
        plain.tree.validate(max_out_degree=6)
        fitted.tree.validate(max_out_degree=6)
        # The annulus grid concentrates rings where the points are.
        assert fitted.rings >= plain.rings

    def test_clustered_workload(self):
        points = clustered_disk(3000, seed=15)
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)

    def test_nonuniform_density(self):
        points = nonuniform_disk(3000, tilt=0.7, seed=16)
        result = build_polar_grid_tree(points, 0, 6)
        result.tree.validate(max_out_degree=6)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        assert result.radius <= 1.5 * farthest

    def test_corner_source_with_connected_rule(self):
        points = rectangle_points(
            5000, lower=(0, 0), upper=(2, 1), source=(0.02, 0.02), seed=17
        )
        relaxed = build_polar_grid_tree(
            points, 0, 6, occupancy="connected", fit_annulus=True
        )
        relaxed.tree.validate(max_out_degree=6)
        strict = build_polar_grid_tree(points, 0, 6)
        strict.tree.validate(max_out_degree=6)
        assert relaxed.radius <= strict.radius + 1e-9

    def test_unknown_occupancy_rejected(self):
        with pytest.raises(ValueError, match="occupancy"):
            build_polar_grid_tree(
                unit_disk(50, seed=0), 0, 6, occupancy="bogus"
            )


class TestPropertyBased:
    @given(
        st.integers(2, 400),
        st.sampled_from([2, 3, 6, 8]),
        st.integers(0, 10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_input_yields_valid_tree(self, n, degree, seed):
        points = unit_disk(n, seed=seed)
        result = build_polar_grid_tree(points, 0, degree)
        result.tree.validate(max_out_degree=degree)
        # Spanning: every node reachable (validate checks), right count.
        assert result.tree.n == n

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_radius_never_below_farthest(self, seed):
        points = unit_disk(200, seed=seed)
        result = build_polar_grid_tree(points, 0, 6)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        assert result.radius >= farthest - 1e-9
