"""Tests for congestion feedback: stream link-load accounting, the
DynamicOverlay rebuild trigger, and the offered-load experiment gates."""

import numpy as np
import pytest

import repro.obs as obs
from repro import costmodel as cm
from repro.core.builder import build_polar_grid_tree
from repro.experiments.congestion import (
    congestion_figures,
    congestion_gate_failures,
    congestion_rebuild_demo,
    replay_load_profile,
    run_congestion_sweep,
)
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.stream_sim import FailureEvent, simulate_stream
from repro.workloads import LOAD_PROFILES, generate_load_trace
from repro.workloads.generators import unit_disk


@pytest.fixture
def tree():
    return build_polar_grid_tree(unit_disk(150, seed=8), 0, 6).tree


class TestStreamLinkLoad:
    def test_failure_free_duty_equals_out_degree(self, tree):
        report = simulate_stream(tree, 6, packets=40)
        assert np.array_equal(report.forwarded, tree.out_degrees() * 40)
        mask = np.arange(tree.n) != tree.root
        assert np.all(report.link_packets[mask] == 40)
        assert report.link_packets[tree.root] == 0

    def test_measured_matches_static_model_when_idle(self, tree):
        report = simulate_stream(tree, 6, packets=40)
        measured = report.uplink_utilization(0.5, capacity=8.0)
        assert np.allclose(
            measured, cm.uplink_utilization(tree, 0.5, capacity=8.0)
        )

    def test_outage_lowers_measured_duty(self, tree):
        # A relay failure suppresses traffic below it for a while: the
        # affected links must carry strictly fewer packets than the
        # stream emitted, never more.
        degrees = tree.out_degrees()
        relay = int(
            np.flatnonzero((degrees > 0) & (np.arange(tree.n) != tree.root))[0]
        )
        report = simulate_stream(
            tree,
            6,
            packets=60,
            packet_interval=0.02,
            failures=[FailureEvent(node=relay, time=0.3)],
            recovery_latency=0.2,
        )
        assert report.failures_applied == 1
        assert np.all(report.link_packets <= 60)
        assert np.all(report.link_packets >= 0)
        # The dead relay stops carrying traffic at its failure time.
        assert report.link_packets[relay] < 60
        measured = report.uplink_utilization(0.5)
        assert measured.shape == (tree.n,)
        assert np.all(measured >= 0)

    def test_conservation_against_delivered(self, tree):
        # Every packet delivered to a leaf was carried by its parent
        # edge; with no failures link_packets equals delivered exactly.
        report = simulate_stream(tree, 6, packets=25)
        receivers = np.flatnonzero(np.arange(tree.n) != tree.root)
        assert np.array_equal(
            report.link_packets[receivers], report.delivered[receivers]
        )

    def test_report_without_accounting_raises(self, tree):
        from repro.overlay.stream_sim import StreamReport

        bare = StreamReport(
            packets_sent=10,
            delivered=np.zeros(3),
            lost=np.zeros(3),
            worst_interruption=0.0,
            failures_applied=0,
        )
        with pytest.raises(ValueError):
            bare.uplink_utilization(0.5)


def _churned(seed=23, threshold=1.4, degree=6, **kwargs):
    rng = np.random.default_rng(seed)
    overlay = DynamicOverlay(
        np.zeros(2),
        max_out_degree=degree,
        rebuild_threshold=None,
        congestion_threshold=threshold,
        **kwargs,
    )
    for i in range(120):
        overlay.join(f"m{i}", rng.normal(size=2))
    for wave in range(3):
        for i in range(wave * 30, wave * 30 + 25):
            overlay.leave(f"m{i}")
        for i in range(120 + wave * 25, 145 + wave * 25):
            overlay.join(f"m{i}", rng.normal(size=2))
    return overlay


class TestCongestionTrigger:
    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            DynamicOverlay(np.zeros(2), congestion_threshold=1.0)
        with pytest.raises(ValueError):
            DynamicOverlay(np.zeros(2), congestion_threshold=1.5, capacity=0)
        overlay = DynamicOverlay(np.zeros(2), congestion_threshold=1.5)
        assert overlay.cost_model == cm.CongestionCost()

    def test_idle_load_never_triggers(self):
        overlay = _churned()
        receipt = overlay.observe_load(0.0)
        assert receipt.inflation == pytest.approx(1.0)
        assert not receipt.triggered and not receipt.rebuilt
        assert overlay.congestion_triggers == 0

    def test_light_trace_never_crosses_threshold(self):
        # Seeded trace whose inflation provably stays below 1.4.
        overlay = _churned()
        for load in generate_load_trace(**LOAD_PROFILES["light"]):
            receipt = overlay.observe_load(float(load))
            assert receipt.inflation < 1.4
        assert overlay.congestion_triggers == 0
        assert overlay.congestion_rebuilds == 0

    def test_heavy_trace_crosses_threshold(self):
        overlay = _churned()
        for load in generate_load_trace(**LOAD_PROFILES["heavy"]):
            overlay.observe_load(float(load))
        assert overlay.congestion_triggers > 0

    def test_rebuild_lowers_loaded_radius(self):
        # Differential check: make-before-break means the post-rebuild
        # effective radius can only drop, and at this seed it strictly
        # does (an adoption happens).
        overlay = _churned(seed=23)
        before = overlay.effective_radius(0.9)
        receipt = overlay.observe_load(0.9)
        assert receipt.triggered and receipt.rebuilt
        assert receipt.radius_before == pytest.approx(before)
        assert receipt.radius_after < receipt.radius_before
        assert overlay.effective_radius(0.9) == pytest.approx(
            receipt.radius_after
        )

    def test_never_adopts_a_worse_tree(self):
        for seed in (7, 11, 23, 41):
            overlay = _churned(seed=seed)
            receipt = overlay.observe_load(0.9)
            assert receipt.radius_after <= receipt.radius_before + 1e-12

    def test_rebuilt_tree_validates_under_scaled_model(self):
        from repro.analysis.oracle import check_tree

        overlay = _churned(seed=23)
        receipt = overlay.observe_load(0.9)
        assert receipt.rebuilt
        tree = overlay.tree()
        report = check_tree(
            tree,
            d_max=6,
            cost_model=overlay.cost_model,
            utilization=cm.link_utilization(tree, 0.9, overlay.capacity),
        )
        assert report.ok

    def test_obs_counters_and_histogram(self):
        overlay = _churned(seed=23)
        obs.enable()
        try:
            overlay.observe_load(0.9)
            snap = obs.snapshot()
        finally:
            obs.reset()
        assert snap["overlay.congestion.trigger.total"]["value"] >= 1
        assert snap["overlay.congestion.rebuild.total"]["value"] >= 1
        hist = snap["overlay.congestion.inflation"]
        assert hist["count"] >= 1
        assert hist["max"] > 1.4

    def test_threshold_none_only_records(self):
        overlay = _churned(threshold=None, cost_model="congestion")
        receipt = overlay.observe_load(0.9)
        assert receipt.inflation > 1.0
        assert not receipt.triggered and not receipt.rebuilt
        assert overlay.congestion_triggers == 0


class TestExperimentGates:
    @pytest.fixture(scope="class")
    def report(self):
        return run_congestion_sweep(n=200, seed=1)

    def test_gates_pass_on_a_fresh_sweep(self, report):
        assert congestion_gate_failures(report) == []

    def test_figures_cover_all_builders(self, report):
        figs = congestion_figures(report)
        assert [f.name for f in figs] == [
            "congestion_radius", "congestion_stress",
        ]
        for fig in figs:
            assert set(fig.series) == set(report["builders"])
            assert not fig.log_x

    def test_gate_catches_tampering(self, report):
        import copy

        bad = copy.deepcopy(report)
        bad["builders"]["polar-grid"]["radius"][-1] = 0.0  # non-monotone
        assert any(
            "monotone" in f for f in congestion_gate_failures(bad)
        )
        bad = copy.deepcopy(report)
        bad["profiles"]["light"]["triggers"] = 3
        assert any(
            "light" in f for f in congestion_gate_failures(bad)
        )
        bad = copy.deepcopy(report)
        del bad["builders"]["steiner"]
        assert any(
            "steiner" in f for f in congestion_gate_failures(bad)
        )

    def test_demo_and_profiles_deterministic(self):
        assert congestion_rebuild_demo() == congestion_rebuild_demo()
        assert replay_load_profile("light") == replay_load_profile("light")
        with pytest.raises(ValueError):
            replay_load_profile("no-such-profile")


class TestLoadTraces:
    def test_profiles_are_deterministic_and_bounded(self):
        for name, prof in LOAD_PROFILES.items():
            trace = generate_load_trace(**prof)
            assert np.array_equal(trace, generate_load_trace(**prof))
            assert trace.min() >= 0.0 and trace.max() <= 0.95

    def test_burst_windows_spike(self):
        prof = LOAD_PROFILES["bursty"]
        trace = generate_load_trace(**prof)
        assert trace[:: prof["burst_every"]].mean() > 2 * np.delete(
            trace, np.s_[:: prof["burst_every"]]
        ).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_load_trace(0, 0.5, 0.1)
        with pytest.raises(ValueError):
            generate_load_trace(5, 0.5, -0.1)
        with pytest.raises(ValueError):
            generate_load_trace(5, 0.5, 0.1, burst=0.9, burst_every=0)
