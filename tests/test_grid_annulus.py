"""Annulus-mode grid specifics (Section IV-C's r_min > 0 regime)."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.grid import PolarGrid
from repro.workloads.generators import annulus_points


def make_annulus_grid(k=5, r_min=0.5, r_max=1.0):
    return PolarGrid(center=np.zeros(2), r_min=r_min, r_max=r_max, k=k)


class TestAnnulusGeometry:
    def test_radii_interpolate_by_area(self):
        grid = make_annulus_grid(k=4, r_min=0.5, r_max=1.0)
        for i in range(5):
            expected = np.sqrt(0.25 + (1.0 - 0.25) * 2.0 ** (i - 4))
            assert grid.ring_radius(i) == pytest.approx(expected)

    def test_innermost_radius_above_r_min(self):
        grid = make_annulus_grid(k=6)
        assert grid.ring_radius(0) > grid.r_min

    def test_equal_cell_areas_in_annulus(self):
        grid = make_annulus_grid(k=5)
        areas = [
            grid.segment(ring, 0).area() for ring in range(1, 6)
        ]
        assert np.allclose(areas, areas[0])
        assert grid.segment(0, 0).area() == pytest.approx(2 * areas[0])

    def test_d0_is_thin_annulus(self):
        grid = make_annulus_grid(k=5, r_min=0.5)
        d0 = grid.segment(0, 0)
        assert d0.r_inner == pytest.approx(0.5)
        assert d0.theta_span == pytest.approx(2 * np.pi)


class TestAnnulusAssignment:
    def test_point_below_r_min_lands_in_ring0(self):
        grid = make_annulus_grid(k=4, r_min=0.5)
        ring, cell = grid.assign_polar(np.array([0.3]), np.array([1.0]))
        assert ring[0] == 0 and cell[0] == 0

    def test_point_at_r_min_lands_in_ring0(self):
        grid = make_annulus_grid(k=4, r_min=0.5)
        ring, _ = grid.assign_polar(np.array([0.5]), np.array([0.0]))
        assert ring[0] == 0

    def test_assignment_matches_segments(self):
        grid = make_annulus_grid(k=5)
        rng = np.random.default_rng(1)
        rho = np.sqrt(rng.uniform(0.25 + 1e-6, 1.0, 200))
        theta = rng.uniform(0, 2 * np.pi, 200)
        ring, cell = grid.assign_polar(rho, theta)
        for i in range(0, 200, 11):
            seg = grid.segment(int(ring[i]), int(cell[i]))
            assert seg.contains(rho[i], theta[i]), i


class TestAnnulusBuilds:
    def test_fit_annulus_sets_positive_r_min(self):
        points = annulus_points(2_000, r_inner=0.6, seed=2)
        result = build_polar_grid_tree(points, 0, 6, fit_annulus=True)
        assert result.grid.r_min > 0.5
        result.tree.validate(max_out_degree=6)

    def test_fit_annulus_gets_deeper_grid_on_shells(self):
        points = annulus_points(2_000, r_inner=0.8, r_outer=1.0, seed=3)
        plain = build_polar_grid_tree(points, 0, 6)
        fitted = build_polar_grid_tree(points, 0, 6, fit_annulus=True)
        assert fitted.rings > plain.rings

    def test_fit_annulus_harmless_when_source_in_cloud(self):
        from repro.workloads.generators import unit_disk

        points = unit_disk(2_000, seed=4)
        plain = build_polar_grid_tree(points, 0, 6)
        fitted = build_polar_grid_tree(points, 0, 6, fit_annulus=True)
        # r_min ~ nearest receiver ~ 1/sqrt(n): nearly identical grids.
        assert fitted.radius == pytest.approx(plain.radius, rel=0.1)

    def test_bound_uses_annulus_radii(self):
        """Equation (7) holds with the annulus geometry too."""
        points = annulus_points(3_000, r_inner=0.7, seed=5)
        for degree in (6, 2):
            result = build_polar_grid_tree(
                points, 0, degree, fit_annulus=True
            )
            assert result.radius <= result.upper_bound + 1e-9

    def test_degree2_annulus_build(self):
        points = annulus_points(2_000, r_inner=0.6, seed=6)
        result = build_polar_grid_tree(
            points, 0, 2, fit_annulus=True, occupancy="connected"
        )
        result.tree.validate(max_out_degree=2)

    def test_thin_shell_3d(self):
        points = annulus_points(2_000, r_inner=0.7, dim=3, seed=7)
        result = build_polar_grid_tree(points, 0, 10, fit_annulus=True)
        result.tree.validate(max_out_degree=10)
