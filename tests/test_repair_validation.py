"""Oracle-backed validation of the repair and churn layers.

ISSUE requirement: after injected multi-node failures and repair, the
repaired tree passes ``check_tree`` — and the ``validate=`` flag wired
into :func:`repro.overlay.repair.repair_after_failure` and
:class:`repro.overlay.dynamic.DynamicOverlay` actually runs (and raises)
when the invariants break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.oracle import check_tree
from repro.core.builder import build_polar_grid_tree
from repro.core.tree import TreeInvariantError
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.repair import repair_after_failure
from repro.workloads.generators import unit_ball, unit_disk


class TestRepairValidation:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_multi_node_failures_stay_oracle_clean(self, dim):
        points = (
            unit_disk(150, seed=51)
            if dim == 2
            else unit_ball(150, dim=3, seed=51)
        )
        degree = 4
        tree = build_polar_grid_tree(points, 0, degree).tree
        rng = np.random.default_rng(52)
        for _ in range(12):
            victim = int(rng.integers(1, tree.n))
            # validate=True makes every repair self-check via the oracle.
            tree, _ = repair_after_failure(tree, victim, degree, validate=True)
            report = check_tree(tree, d_max=degree, root=0)
            assert report.ok, report.render()
        assert tree.n == 150 - 12

    def test_per_node_budgets_survive_repair(self):
        points = unit_disk(80, seed=53)
        degree = 3
        tree = build_polar_grid_tree(points, 0, degree).tree
        budgets = np.full(tree.n, degree, dtype=np.int64)
        budgets[0] = 10  # generous source, tight receivers
        tree, index_map = repair_after_failure(tree, 5, budgets, validate=True)
        survivors = np.flatnonzero(index_map >= 0)
        report = check_tree(tree, d_max=budgets[survivors], root=0)
        assert report.ok, report.render()

    def test_validate_flag_raises_on_violated_budgets(self):
        # Budgets tighter than the tree already uses: the repair itself
        # only rations *new* attachments, so the repaired tree still
        # violates the cap — exactly what the validate flag must catch.
        points = unit_disk(100, seed=54)
        tree = build_polar_grid_tree(points, 0, 6).tree
        victim = int(np.flatnonzero(tree.out_degrees() == 0)[0])
        tight = np.full(tree.n, 2, dtype=np.int64)
        # Silent without validation...
        repaired, _ = repair_after_failure(tree, victim, tight)
        assert not check_tree(repaired, d_max=2, root=0).ok
        # ...raising with it.
        with pytest.raises(TreeInvariantError, match="DEGREE_CAP"):
            repair_after_failure(tree, victim, tight, validate=True)


class TestDynamicOverlayValidation:
    def test_churn_with_validate_stays_clean(self):
        rng = np.random.default_rng(55)
        overlay = DynamicOverlay(
            np.zeros(2), max_out_degree=3, rebuild_threshold=0.2, validate=True
        )
        alive: list[str] = []
        for i in range(80):
            if alive and rng.random() < 0.35:
                name = alive.pop(int(rng.integers(0, len(alive))))
                overlay.leave(name)
            else:
                name = f"h{i}"
                overlay.join(name, rng.normal(size=2))
                alive.append(name)
        assert overlay.rebuild_count > 0  # rebuilds were validated too
        report = check_tree(
            overlay.tree(), d_max=overlay.max_out_degree, root=0
        )
        assert report.ok, report.render()
        assert overlay.radius() == pytest.approx(
            overlay.tree().radius(), rel=1e-9
        )

    def test_cache_drift_is_caught(self):
        overlay = DynamicOverlay(np.zeros(2), max_out_degree=3, validate=True)
        rng = np.random.default_rng(56)
        for i in range(10):
            overlay.join(f"h{i}", rng.normal(size=2))
        overlay._delay[3] += 0.5  # simulated incremental bookkeeping bug
        with pytest.raises(TreeInvariantError, match="drift"):
            overlay.join("late", rng.normal(size=2))

    def test_degree_cache_drift_is_caught(self):
        overlay = DynamicOverlay(np.zeros(2), max_out_degree=3, validate=True)
        rng = np.random.default_rng(57)
        for i in range(10):
            overlay.join(f"h{i}", rng.normal(size=2))
        overlay._degree[0] += 1
        with pytest.raises(TreeInvariantError, match="out-degree"):
            overlay.join("late", rng.normal(size=2))

    def test_validate_off_skips_the_self_check(self):
        overlay = DynamicOverlay(np.zeros(2), max_out_degree=3, validate=False)
        rng = np.random.default_rng(58)
        for i in range(5):
            overlay.join(f"h{i}", rng.normal(size=2))
        overlay._delay[2] += 0.5
        overlay.join("late", rng.normal(size=2))  # no raise: flag is off
