"""Tests for the event-driven dissemination simulator."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.overlay.simulator import simulate_dissemination
from repro.workloads.generators import unit_disk


def chain_tree(n: int) -> MulticastTree:
    points = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    parent = np.arange(-1, n - 1)
    parent[0] = 0
    return MulticastTree(points=points, parent=parent, root=0)


class TestPureDistanceModel:
    def test_matches_analytic_delays(self):
        """With zero overheads the simulator IS the root-delay oracle."""
        points = unit_disk(800, seed=20)
        tree = build_polar_grid_tree(points, 0, 6).tree
        result = simulate_dissemination(tree)
        assert np.allclose(result.receive_time, tree.root_delays())
        assert result.completion_time == pytest.approx(tree.radius())

    def test_chain(self):
        result = simulate_dissemination(chain_tree(5))
        assert np.allclose(result.receive_time, [0, 1, 2, 3, 4])

    def test_event_count(self):
        result = simulate_dissemination(chain_tree(5))
        assert result.events == 5

    def test_delivery_order_is_time_sorted(self):
        points = unit_disk(100, seed=21)
        tree = build_polar_grid_tree(points, 0, 6).tree
        result = simulate_dissemination(tree)
        times = result.receive_time[result.order]
        assert np.all(np.diff(times) >= -1e-12)


class TestOverheads:
    def test_scalar_processing_delay(self):
        result = simulate_dissemination(chain_tree(4), processing_delay=0.5)
        # Each relay adds 0.5 before forwarding; node i has i hops, but
        # the last hop's receiver does not process.
        assert np.allclose(result.receive_time, [0, 1.5, 3.0, 4.5])

    def test_per_node_processing_delay(self):
        proc = np.array([1.0, 0.0, 0.0, 0.0])
        result = simulate_dissemination(chain_tree(4), processing_delay=proc)
        assert np.allclose(result.receive_time, [0, 2.0, 3.0, 4.0])

    def test_serialization_delay_staggers_children(self):
        # A 3-leaf star: children at distance 1 each.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        tree = MulticastTree(points, np.zeros(4, dtype=np.int64), 0)
        result = simulate_dissemination(tree, serialization_delay=0.25)
        arrivals = np.sort(result.receive_time[1:])
        assert np.allclose(arrivals, [1.0, 1.25, 1.5])

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError, match="negative"):
            simulate_dissemination(chain_tree(3), processing_delay=-1.0)
        with pytest.raises(ValueError, match="negative"):
            simulate_dissemination(chain_tree(3), serialization_delay=-1.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            simulate_dissemination(chain_tree(3), processing_delay=np.zeros(5))

    def test_overheads_never_reduce_delay(self):
        points = unit_disk(200, seed=22)
        tree = build_polar_grid_tree(points, 0, 2).tree
        base = simulate_dissemination(tree)
        loaded = simulate_dissemination(
            tree, processing_delay=0.01, serialization_delay=0.01
        )
        assert np.all(loaded.receive_time >= base.receive_time - 1e-12)
