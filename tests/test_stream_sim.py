"""Tests for the continuous-stream simulator."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.overlay.stream_sim import FailureEvent, simulate_stream
from repro.workloads.generators import unit_disk


@pytest.fixture
def tree():
    return build_polar_grid_tree(unit_disk(300, seed=1), 0, 6).tree


class TestHappyPath:
    def test_no_failures_no_loss(self, tree):
        report = simulate_stream(tree, 6, packets=50)
        receivers = np.flatnonzero(np.arange(tree.n) != tree.root)
        assert np.all(report.delivered[receivers] == 50)
        assert report.total_lost == 0
        assert report.loss_fraction() == 0.0
        assert report.failures_applied == 0
        assert report.worst_interruption == 0.0

    def test_source_delivers_nothing_to_itself(self, tree):
        report = simulate_stream(tree, 6, packets=10)
        assert report.delivered[tree.root] == 0

    def test_validation(self, tree):
        with pytest.raises(ValueError, match="one packet"):
            simulate_stream(tree, 6, packets=0)
        with pytest.raises(ValueError, match="positive"):
            simulate_stream(tree, 6, packet_interval=0.0)
        with pytest.raises(ValueError, match="source"):
            simulate_stream(
                tree, 6, failures=[FailureEvent(node=tree.root, time=0.1)]
            )
        with pytest.raises(ValueError, match="out of range"):
            simulate_stream(
                tree, 6, failures=[FailureEvent(node=tree.n + 1, time=0.1)]
            )


class TestFailures:
    def test_leaf_failure_hurts_nobody_else(self, tree):
        leaf = int(np.flatnonzero(tree.out_degrees() == 0)[0])
        report = simulate_stream(
            tree,
            6,
            packets=50,
            packet_interval=0.02,
            failures=[FailureEvent(node=leaf, time=0.5)],
        )
        assert report.failures_applied == 1
        assert report.lost[leaf] == -1  # sentinel: it left
        survivors = np.flatnonzero(report.lost >= 0)
        assert np.all(report.lost[survivors] == 0)

    def test_relay_failure_causes_bounded_loss(self, tree):
        degrees = tree.out_degrees()
        degrees[tree.root] = 0
        relay = int(np.argmax(degrees))
        subtree = set(tree.subtree_nodes(relay).tolist()) - {relay}
        report = simulate_stream(
            tree,
            6,
            packets=100,
            packet_interval=0.02,
            failures=[FailureEvent(node=relay, time=0.985)],
            recovery_latency=0.1,
        )
        # Outage window [0.985, 1.085): packets 50..54 (5 packets).
        for node in list(subtree)[:20]:
            assert report.lost[node] == 5, node
        # Nodes outside the subtree lose nothing.
        outside = (
            set(range(tree.n)) - subtree - {relay, tree.root}
        )
        for node in list(outside)[:20]:
            assert report.lost[node] == 0

    def test_final_tree_valid_after_failures(self, tree):
        rng = np.random.default_rng(2)
        victims = rng.choice(
            np.arange(1, tree.n), size=5, replace=False
        )
        failures = [
            FailureEvent(node=int(v), time=0.1 * (i + 1))
            for i, v in enumerate(victims)
        ]
        report = simulate_stream(
            tree, 6, packets=100, packet_interval=0.02, failures=failures
        )
        assert report.failures_applied == 5
        report.final_tree.validate(max_out_degree=6)
        assert report.final_tree.n == tree.n - 5

    def test_duplicate_failure_ignored(self, tree):
        leaf = int(np.flatnonzero(tree.out_degrees() == 0)[0])
        report = simulate_stream(
            tree,
            6,
            packets=30,
            failures=[
                FailureEvent(node=leaf, time=0.1),
                FailureEvent(node=leaf, time=0.2),
            ],
        )
        assert report.failures_applied == 1

    def test_recovery_latency_scales_loss(self, tree):
        degrees = tree.out_degrees()
        degrees[tree.root] = 0
        relay = int(np.argmax(degrees))
        short = simulate_stream(
            tree,
            6,
            packets=200,
            packet_interval=0.01,
            failures=[FailureEvent(node=relay, time=0.995)],
            recovery_latency=0.05,
        )
        long = simulate_stream(
            tree,
            6,
            packets=200,
            packet_interval=0.01,
            failures=[FailureEvent(node=relay, time=0.995)],
            recovery_latency=0.5,
        )
        assert long.total_lost > short.total_lost
        assert long.worst_interruption == pytest.approx(0.5)

    def test_loss_fraction_bounds(self, tree):
        degrees = tree.out_degrees()
        degrees[tree.root] = 0
        relay = int(np.argmax(degrees))
        report = simulate_stream(
            tree,
            6,
            packets=100,
            packet_interval=0.02,
            failures=[FailureEvent(node=relay, time=1.0)],
        )
        assert 0.0 < report.loss_fraction() < 0.5
