"""Tests for the checkpointed campaign runner."""

import json

import pytest

from repro.experiments.campaign import Campaign, ExperimentSpec


def small_spec(trials=3, name="unit"):
    return ExperimentSpec(
        name=name, sizes=(50, 100), degrees=(6,), trials=trials, seed=5
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            ExperimentSpec(name="")
        with pytest.raises(ValueError, match="name"):
            ExperimentSpec(name="a/b")
        with pytest.raises(ValueError, match="trials"):
            ExperimentSpec(name="x", trials=0)

    def test_configurations_cross_product(self):
        spec = ExperimentSpec(name="x", sizes=(10, 20), degrees=(6, 2))
        assert list(spec.configurations()) == [
            (10, 6),
            (10, 2),
            (20, 6),
            (20, 2),
        ]


class TestCampaign:
    def test_full_run_produces_rows_and_summary(self, tmp_path):
        campaign = Campaign(small_spec(), tmp_path)
        rows = campaign.run()
        assert len(rows) == 2
        assert campaign.finished
        summary = json.loads(
            (campaign.directory / "summary.json").read_text()
        )
        assert len(summary["rows"]) == 2
        assert campaign.summary_rows()[0].delay == pytest.approx(
            rows[0].delay
        )

    def test_rerun_is_a_noop(self, tmp_path):
        campaign = Campaign(small_spec(), tmp_path)
        first = campaign.run()
        # Corrupting nothing, a second run reads the same records back.
        second = Campaign(small_spec(), tmp_path).run()
        assert [r.delay for r in first] == [r.delay for r in second]

    def test_resume_after_partial_run(self, tmp_path):
        # Phase 1: run with 1 trial (simulates an interrupted campaign).
        partial = Campaign(small_spec(trials=1), tmp_path)
        partial.run()
        # Phase 2: the real spec wants 3 trials; only 2 more run.
        campaign = Campaign(small_spec(trials=3), tmp_path)
        assert campaign.completed_trials(50, 6) == 1
        rows = campaign.run()
        assert campaign.completed_trials(50, 6) == 3
        # Resumed records are identical to a clean 3-trial campaign.
        clean = Campaign(small_spec(trials=3, name="clean"), tmp_path)
        clean_rows = clean.run()
        assert rows[0].delay == pytest.approx(clean_rows[0].delay)

    def test_status_reporting(self, tmp_path):
        campaign = Campaign(small_spec(trials=2), tmp_path)
        assert campaign.status()["n=50 degree=6"] == (0, 2)
        assert not campaign.finished
        campaign.run()
        assert campaign.status()["n=50 degree=6"] == (2, 2)

    def test_progress_callback(self, tmp_path):
        lines = []
        Campaign(small_spec(trials=1), tmp_path).run(progress=lines.append)
        assert len(lines) == 2
        assert "n=50" in lines[0]

    def test_summary_before_run_raises(self, tmp_path):
        campaign = Campaign(small_spec(name="fresh"), tmp_path)
        with pytest.raises(FileNotFoundError, match="summary"):
            campaign.summary_rows()

    def test_checkpoint_files_are_json_lines(self, tmp_path):
        campaign = Campaign(small_spec(trials=2), tmp_path)
        campaign.run()
        path = campaign.directory / "n50_d6_dim2.jsonl"
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["n"] == 50
        assert "delay" in record
