"""Tests for the d-dimensional equal-volume grid (Section IV-B)."""

import numpy as np
import pytest

from repro.core.grid_nd import MAX_RINGS, PolarGridND, choose_ring_count
from repro.geometry.regions import Ball


def make_grid(dim=3, k=4, r_max=1.0, r_min=0.0):
    return PolarGridND(center=np.zeros(dim), r_min=r_min, r_max=r_max, k=k)


class TestRadii3D:
    def test_volume_doubles_per_ring(self):
        """r_i = r_max * 2^((i-k)/d) — each ring doubles the enclosed
        volume, the d-dimensional form of equation (3)."""
        grid = make_grid(dim=3, k=5)
        for i in range(6):
            assert grid.ring_radius(i) == pytest.approx(2.0 ** ((i - 5) / 3.0))

    def test_2d_matches_paper(self):
        grid = make_grid(dim=2, k=4)
        for i in range(5):
            assert grid.ring_radius(i) == pytest.approx(
                (1 / np.sqrt(2.0)) ** (4 - i)
            )


class TestAxisSplits:
    def test_round_robin_3d(self):
        grid = make_grid(dim=3, k=6)
        # 2 angular axes; splits alternate starting at axis 0.
        assert grid.axis_splits(0) == (0, 0)
        assert grid.axis_splits(1) == (1, 0)
        assert grid.axis_splits(2) == (1, 1)
        assert grid.axis_splits(3) == (2, 1)
        assert grid.axis_splits(6) == (3, 3)

    def test_round_robin_4d(self):
        grid = PolarGridND(center=np.zeros(4), r_min=0.0, r_max=1.0, k=7)
        assert grid.axis_splits(7) == (3, 2, 2)

    def test_2d_single_axis(self):
        grid = make_grid(dim=2, k=5)
        assert grid.axis_splits(3) == (3,)

    def test_total_bins_match_cell_count(self):
        grid = make_grid(dim=3, k=6)
        for ring in range(7):
            bins = grid.axis_splits(ring)
            assert 2 ** sum(bins) == grid.cells_in_ring(ring)


class TestCellCodec:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_bins_roundtrip(self, dim):
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=6)
        for ring in (0, 1, 3, 6):
            for cell in range(grid.cells_in_ring(ring)):
                bins = grid.cell_bins(ring, cell)
                assert grid.cell_from_bins(ring, bins) == cell

    def test_out_of_range_cell(self):
        grid = make_grid(dim=3, k=3)
        with pytest.raises(ValueError, match="out of range"):
            grid.cell_bins(2, 4)

    def test_global_id_roundtrip(self):
        grid = make_grid(dim=3, k=5)
        for ring in range(6):
            for cell in (0, grid.cells_in_ring(ring) - 1):
                gid = int(grid.global_id(ring, cell))
                assert grid.ring_of_global(gid) == (ring, cell)


class TestAlignment:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_parent_child_inverse(self, dim):
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=6)
        for ring in range(6):
            for cell in range(grid.cells_in_ring(ring)):
                children = grid.child_cells(ring, cell)
                assert len(children) == 2
                for child in children:
                    assert grid.parent_cell(*child) == (ring, cell)

    def test_children_partition_ring(self):
        grid = make_grid(dim=3, k=5)
        for ring in range(5):
            seen = set()
            for cell in range(grid.cells_in_ring(ring)):
                for _r, c in grid.child_cells(ring, cell):
                    seen.add(c)
            assert seen == set(range(grid.cells_in_ring(ring + 1)))

    def test_parent_cells_vectorised_matches_scalar(self):
        grid = make_grid(dim=3, k=6)
        for ring in (2, 4, 6):
            cells = np.arange(grid.cells_in_ring(ring))
            parents = grid.parent_cells(ring, cells)
            for cell, par in zip(cells.tolist(), parents.tolist()):
                assert grid.parent_cell(ring, cell) == (ring - 1, par)

    def test_child_box_nested_in_parent_box(self):
        grid = make_grid(dim=4, k=6)
        for ring in range(1, 6):
            box = grid.cell_t_box(ring, 1)
            for child_ring, child_cell in grid.child_cells(ring, 1):
                child_box = grid.cell_t_box(child_ring, child_cell)
                for (lo, hi), (clo, chi) in zip(box, child_box):
                    assert lo - 1e-12 <= clo and chi <= hi + 1e-12


class TestEqualVolume:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_monte_carlo_cell_occupancy(self, dim):
        """Uniform ball samples spread uniformly over each ring's cells —
        the empirical form of the equal-volume property."""
        rng = np.random.default_rng(42)
        grid = PolarGridND(center=np.zeros(dim), r_min=0.0, r_max=1.0, k=5)
        pts = Ball(dim=dim).sample(60_000, rng)
        ring, cell = grid.assign_points(pts)
        for r in range(1, 6):
            counts = np.bincount(
                cell[ring == r], minlength=grid.cells_in_ring(r)
            )
            expected = counts.sum() / grid.cells_in_ring(r)
            assert counts.min() > expected * 0.75, (r, counts)
            assert counts.max() < expected * 1.25, (r, counts)

    def test_ring_population_doubles(self):
        rng = np.random.default_rng(7)
        grid = make_grid(dim=3, k=5)
        pts = Ball(dim=3).sample(50_000, rng)
        ring, _ = grid.assign_points(pts)
        counts = np.bincount(ring, minlength=6).astype(float)
        # Ring i+1 has twice the volume of ring i (i >= 1).
        for i in range(1, 5):
            assert counts[i + 1] / counts[i] == pytest.approx(2.0, rel=0.15)


class TestChooseRingCount:
    def test_matches_eq5_scaling(self):
        """k grows like (1/2) log2 n (equation 5)."""
        rng = np.random.default_rng(0)
        ks = {}
        for n in (256, 4096, 65536):
            pts = Ball(dim=2).sample(n, rng)

            def factory(k):
                return PolarGridND(
                    center=np.zeros(2), r_min=0.0, r_max=1.0, k=k
                )

            from repro.geometry.polar import SphericalTransform

            tr = SphericalTransform(2)
            rho, t = tr.transform(pts, np.zeros(2))
            ks[n] = choose_ring_count(factory, rho, t)
        # Quadrupling n should add about 1 ring, and never fewer than
        # the eq.(5) floor.
        assert ks[4096] >= ks[256] + 1
        assert ks[65536] >= ks[4096] + 1
        for n, k in ks.items():
            assert k >= 0.5 * np.log2(n) - 1

    def test_minimum_k_is_1(self):
        from repro.geometry.polar import SphericalTransform

        tr = SphericalTransform(2)
        pts = np.array([[0.9, 0.0]])
        rho, t = tr.transform(pts, np.zeros(2))

        def factory(k):
            return PolarGridND(center=np.zeros(2), r_min=0.0, r_max=1.0, k=k)

        assert choose_ring_count(factory, rho, t) == 1

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="occupancy"):
            choose_ring_count(None, np.zeros(1), np.zeros((1, 1)), occupancy="x")


class TestConstruction:
    def test_max_rings_guard(self):
        with pytest.raises(ValueError, match="ring count"):
            make_grid(k=MAX_RINGS + 1)

    def test_transform_dim_mismatch(self):
        from repro.geometry.polar import SphericalTransform

        with pytest.raises(ValueError, match="transform"):
            PolarGridND(
                center=np.zeros(3),
                r_min=0.0,
                r_max=1.0,
                k=2,
                transform=SphericalTransform(2),
            )

    def test_assign_shape_check(self):
        grid = make_grid(dim=3, k=2)
        with pytest.raises(ValueError, match="shape"):
            grid.assign(np.zeros(4), np.zeros((4, 1)))
