"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *every* input, spanning multiple
subsystems at once — the safety net under refactors. Per-module property
tests live with their modules; these are the ones whose failure could
implicate several of them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import compact_tree
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.core.diameter import tree_diameter
from repro.core.quadtree import build_quadtree_tree
from repro.overlay.simulator import simulate_dissemination
from repro.workloads.generators import unit_ball, unit_disk


def cloud(seed: int, n: int, dim: int = 2) -> np.ndarray:
    if dim == 2:
        return unit_disk(n, seed=seed)
    return unit_ball(n, dim=dim, seed=seed)


BUILDERS = {
    "polar6": lambda pts: build_polar_grid_tree(pts, 0, 6).tree,
    "polar2": lambda pts: build_polar_grid_tree(pts, 0, 2).tree,
    "bisect4": lambda pts: build_bisection_tree(pts, 0, 4).tree,
    "quad4": lambda pts: build_quadtree_tree(pts, 0, 4).tree,
    "compact": lambda pts: compact_tree(pts, 0, 6),
}


@given(
    st.sampled_from(sorted(BUILDERS)),
    st.integers(0, 100_000),
    st.integers(2, 250),
)
@settings(max_examples=60, deadline=None)
def test_every_builder_every_cloud_spans_validly(name, seed, n):
    """Any builder, any cloud: a valid spanning tree with sane radius."""
    points = cloud(seed, n)
    tree = BUILDERS[name](points)
    tree.validate()
    assert tree.n == n
    farthest = float(np.linalg.norm(points - points[0], axis=1).max())
    assert tree.radius() >= farthest - 1e-9
    # No builder may be worse than a full chain of worst-case hops.
    assert tree.radius() <= 2.0 * n


@given(st.integers(0, 100_000), st.integers(2, 200))
@settings(max_examples=40, deadline=None)
def test_simulator_matches_analysis_for_all_builders(seed, n):
    """Event-driven replay equals analytic delays, whatever built it."""
    points = cloud(seed, n)
    for builder in BUILDERS.values():
        tree = builder(points)
        replay = simulate_dissemination(tree)
        assert np.allclose(replay.receive_time, tree.root_delays())


@given(st.integers(0, 100_000), st.integers(3, 200))
@settings(max_examples=40, deadline=None)
def test_radius_diameter_sandwich(seed, n):
    """radius <= diameter <= 2 * radius for every rooted tree."""
    points = cloud(seed, n)
    tree = build_polar_grid_tree(points, 0, 6).tree
    radius = tree.radius()
    diameter = tree_diameter(tree)
    assert radius - 1e-9 <= diameter <= 2 * radius + 1e-9


@given(st.integers(0, 100_000), st.integers(2, 200), st.integers(2, 10))
@settings(max_examples=40, deadline=None)
def test_degree_budget_is_respected_exactly(seed, n, degree):
    points = cloud(seed, n)
    result = build_polar_grid_tree(points, 0, degree)
    degrees = result.tree.out_degrees()
    assert int(degrees.max()) <= degree
    # The binary construction promises 2 even when offered 3..5.
    if degree < 6:
        assert int(degrees.max()) <= 2


@given(st.integers(0, 100_000), st.integers(10, 200))
@settings(max_examples=30, deadline=None)
def test_eq7_bound_for_arbitrary_clouds(seed, n):
    """Equation (7) holds for whatever k the build chose — not just the
    uniform-disk regime the proof targets, since the bound derivation
    only uses the grid geometry."""
    points = cloud(seed, n)
    for degree in (6, 2):
        result = build_polar_grid_tree(points, 0, degree)
        assert result.radius <= result.upper_bound + 1e-9


@given(st.integers(0, 100_000), st.integers(3, 120))
@settings(max_examples=30, deadline=None)
def test_repair_of_random_failure_preserves_everything(seed, n):
    from repro.overlay.repair import repair_after_failure

    points = cloud(seed, n)
    tree = build_polar_grid_tree(points, 0, 6).tree
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(1, n))
    new_tree, index_map = repair_after_failure(tree, victim, 6)
    new_tree.validate(max_out_degree=6)
    assert new_tree.n == n - 1
    # Survivor coordinates are carried over exactly.
    survivors = [i for i in range(n) if i != victim]
    assert np.allclose(new_tree.points, points[survivors])
    assert index_map[victim] == -1


@given(st.integers(0, 100_000), st.integers(2, 150))
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip_any_tree(seed, n):
    import tempfile
    from pathlib import Path

    from repro.core.io import load_tree, save_tree

    points = cloud(seed, n)
    tree = build_polar_grid_tree(points, 0, 2).tree
    with tempfile.TemporaryDirectory() as tmp:
        loaded = load_tree(save_tree(tree, Path(tmp) / "t.npz"))
    assert np.array_equal(loaded.parent, tree.parent)
    assert loaded.radius() == pytest.approx(tree.radius())


@given(st.integers(0, 100_000), st.integers(2, 150), st.integers(3, 4))
@settings(max_examples=25, deadline=None)
def test_higher_dimensions_share_all_invariants(seed, n, dim):
    points = cloud(seed, n, dim=dim)
    full_degree = (1 << dim) + 2
    for degree in (full_degree, 2):
        result = build_polar_grid_tree(points, 0, degree)
        result.tree.validate(max_out_degree=degree)
        replay = simulate_dissemination(result.tree)
        assert np.allclose(replay.receive_time, result.tree.root_delays())


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_dynamic_overlay_equals_snapshot_semantics(seed):
    """After any join/leave mix, the overlay's cached radius equals its
    snapshot's, and the snapshot is valid."""
    from repro.overlay.dynamic import DynamicOverlay

    rng = np.random.default_rng(seed)
    overlay = DynamicOverlay((0.0, 0.0), 4, rebuild_threshold=0.4)
    alive = []
    for step in range(60):
        if not alive or rng.random() < 0.7:
            name = f"n{step}"
            overlay.join(name, rng.normal(size=2) * 0.4)
            alive.append(name)
        else:
            overlay.leave(alive.pop(int(rng.integers(0, len(alive)))))
    tree = overlay.tree()
    tree.validate(max_out_degree=4)
    assert overlay.radius() == pytest.approx(tree.radius())
