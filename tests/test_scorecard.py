"""Tests for the reproduction scorecard."""

import pytest

from repro.experiments.scorecard import (
    CellScore,
    Scorecard,
    run_scorecard,
)


def make_cell(passed=True, measured_delay=1.0, paper_delay=1.0):
    return CellScore(
        n=100,
        degree=6,
        measured_delay=measured_delay,
        paper_delay=paper_delay,
        measured_core=0.9,
        paper_core=0.9,
        measured_rings=4.0,
        paper_rings=3.61,
        paper_dev=0.2,
        passed=passed,
    )


class TestScorecardPlumbing:
    def test_passed_aggregation(self):
        card = Scorecard(cells=[make_cell(True), make_cell(True)])
        assert card.passed
        card.cells.append(make_cell(False))
        assert not card.passed

    def test_errors(self):
        cell = make_cell(measured_delay=1.1, paper_delay=1.0)
        assert cell.delay_error() == pytest.approx(0.1)

    def test_render_verdicts(self):
        good = Scorecard(cells=[make_cell(True)])
        assert "REPRODUCED" in good.render()
        bad = Scorecard(cells=[make_cell(False)])
        assert "NOT REPRODUCED" in bad.render()
        assert "FAIL" in bad.render()

    def test_worst_delay_error(self):
        card = Scorecard(
            cells=[
                make_cell(measured_delay=1.02, paper_delay=1.0),
                make_cell(measured_delay=1.08, paper_delay=1.0),
            ]
        )
        assert card.worst_delay_error() == pytest.approx(0.08)


class TestRunScorecard:
    def test_small_cells_reproduce(self):
        card = run_scorecard(sizes=(100, 1_000), trials=8, seed=0)
        assert len(card.cells) == 4
        assert card.passed, card.render()
        assert card.worst_delay_error() < 0.15

    def test_unpublished_size_raises(self):
        with pytest.raises(KeyError):
            run_scorecard(sizes=(123,), trials=1)

    def test_cli_scorecard(self, capsys):
        from repro.cli import main

        rc = main(["scorecard", "--sizes", "100", "--trials", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "REPRODUCED" in out
