"""Failure-injection scenarios across the overlay stack.

These tests chain build -> simulate -> fail -> repair -> re-simulate in
adversarial patterns (cascades, high-degree targets, repeated hits on
the same region) and assert the system-level contract: after every
repair the tree is valid, every surviving receiver is reachable, and
the replayed dissemination matches the analytic delays.
"""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.overlay.repair import repair_after_failure
from repro.overlay.simulator import simulate_dissemination
from repro.workloads.generators import unit_disk


def reachable_and_consistent(tree):
    tree.validate()
    replay = simulate_dissemination(tree)
    assert np.allclose(replay.receive_time, tree.root_delays())
    return replay


class TestTargetedFailures:
    def test_kill_the_heaviest_relay(self):
        """The highest-fanout node (most orphans at once)."""
        tree = build_polar_grid_tree(unit_disk(800, seed=1), 0, 6).tree
        degrees = tree.out_degrees()
        degrees[tree.root] = -1  # never the source
        victim = int(np.argmax(degrees))
        new_tree, _ = repair_after_failure(tree, victim, 6)
        reachable_and_consistent(new_tree)

    def test_kill_the_deepest_relay(self):
        tree = build_polar_grid_tree(unit_disk(800, seed=2), 0, 2).tree
        depths = tree.depths().astype(float)
        depths[tree.out_degrees() == 0] = -1  # must be a relay
        victim = int(np.argmax(depths))
        new_tree, _ = repair_after_failure(tree, victim, 2)
        reachable_and_consistent(new_tree)

    def test_kill_a_source_child(self):
        """Failure right below the root orphans a giant subtree."""
        tree = build_polar_grid_tree(unit_disk(800, seed=3), 0, 6).tree
        children = np.flatnonzero(tree.parent == tree.root)
        victim = int(children[children != tree.root][0])
        new_tree, _ = repair_after_failure(tree, victim, 6)
        reachable_and_consistent(new_tree)


class TestCascades:
    @pytest.mark.parametrize("degree", [6, 2])
    def test_ten_sequential_failures(self, degree):
        tree = build_polar_grid_tree(unit_disk(600, seed=4), 0, degree).tree
        rng = np.random.default_rng(4)
        for _ in range(10):
            candidates = np.flatnonzero(
                np.arange(tree.n) != tree.root
            )
            victim = int(rng.choice(candidates))
            tree, _ = repair_after_failure(tree, victim, degree)
        assert tree.n == 590
        reachable_and_consistent(tree)

    def test_radius_degrades_gracefully_under_cascade(self):
        tree = build_polar_grid_tree(unit_disk(1_000, seed=5), 0, 6).tree
        original = tree.radius()
        rng = np.random.default_rng(5)
        for _ in range(20):
            relays = np.flatnonzero(
                (tree.out_degrees() > 0) & (np.arange(tree.n) != tree.root)
            )
            victim = int(rng.choice(relays))
            tree, _ = repair_after_failure(tree, victim, 6)
        reachable_and_consistent(tree)
        assert tree.radius() < 3.0 * original

    def test_repeated_hits_near_the_source(self):
        """Failures concentrated where the core tree is thinnest."""
        tree = build_polar_grid_tree(unit_disk(500, seed=6), 0, 6).tree
        for _ in range(5):
            delays = tree.root_delays().copy()
            delays[tree.root] = np.inf
            delays[tree.out_degrees() == 0] = np.inf  # relays only
            victim = int(np.argmin(delays))
            tree, _ = repair_after_failure(tree, victim, 6)
        reachable_and_consistent(tree)


class TestSimulatedOutageWindow:
    def test_dissemination_after_mass_churn(self):
        """A session loses 10% of members, one at a time, mid-stream."""
        from repro.overlay.dynamic import DynamicOverlay

        rng = np.random.default_rng(7)
        overlay = DynamicOverlay((0.0, 0.0), 4, rebuild_threshold=0.5)
        for i in range(300):
            overlay.join(f"v{i}", rng.normal(size=2) * 0.4)
        members = overlay.members()[1:]
        for name in rng.choice(members, size=30, replace=False):
            overlay.leave(str(name))
        tree = overlay.tree()
        replay = reachable_and_consistent(tree)
        assert replay.receive_time.shape[0] == 271
