"""Statement-by-statement checks of the paper's construction claims.

Where other test modules check *our* invariants, these encode sentences
of the paper directly: the white-box wiring cases of Section IV-A, the
degree claims of Sections II/III-C, the monotone-radius property of the
bisection, and the grid properties of Section III-A as stated.
"""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.grid import PolarGrid
from repro.workloads.generators import unit_ball, unit_disk


class TestSectionIIStatements:
    def test_at_most_four_children(self):
        """"The algorithm constructs a spanning tree in which each node
        has at most 4 children." (out-degree-4 bisection)"""
        from repro.core.builder import build_bisection_tree

        tree = build_bisection_tree(unit_disk(500, seed=1), 0, 4).tree
        assert tree.max_out_degree() <= 4

    def test_monotone_radius_from_bottom_source(self):
        """"Each path always moves monotonically along the radius axis."
        Provably true when the source sits at the segment's inner edge:
        representatives are chosen closest to the local source's radius,
        which from below means each quadrant's minimum — radii along any
        path are then non-decreasing."""
        from repro.core.bisection import bisection_tree_2d
        from repro.core.tree import MulticastTree
        from repro.geometry.polar import TWO_PI, to_polar

        rng = np.random.default_rng(2)
        n = 200
        radius = np.sqrt(rng.uniform(0.36, 1.0, n))
        theta = rng.uniform(0.0, 0.2, n) * TWO_PI
        source = int(np.argmin(radius))
        points = np.stack(
            [radius * np.cos(theta), radius * np.sin(theta)], axis=1
        )
        parent = np.full(n, -1, dtype=np.int64)
        parent[source] = source
        bisection_tree_2d(
            radius.tolist(),
            (theta / TWO_PI).tolist(),
            [i for i in range(n) if i != source],
            source,
            (float(radius.min()) - 1e-12, 1.0),
            (0.0, 0.2),
            parent,
            4,
        )
        tree = MulticastTree(points=points, parent=parent, root=source)
        tree.validate(max_out_degree=4)
        for node in range(n):
            path = tree.path_to_root(node)
            radii = [radius[i] for i in reversed(path)]
            assert all(
                a <= b + 1e-12 for a, b in zip(radii, radii[1:])
            ), node


class TestSectionIIIStatements:
    def test_grid_property_1_equal_area(self):
        """Property 1: "All cells of the grid have the same area." """
        grid = PolarGrid(center=np.zeros(2), r_min=0.0, r_max=1.0, k=6)
        areas = {
            round(grid.segment(ring, 0).area(), 12)
            for ring in range(1, 7)
        }
        assert len(areas) == 1

    def test_grid_property_2_doubling(self):
        """Property 2: "Each containing ring has twice more cells than
        the ring immediately inside it." """
        grid = PolarGrid(center=np.zeros(2), r_min=0.0, r_max=1.0, k=8)
        for ring in range(1, 8):
            assert grid.cells_in_ring(ring + 1) == 2 * grid.cells_in_ring(ring)

    def test_grid_property_3_after_fit(self):
        """Property 3: every cell non-empty except the outermost ring —
        and the chosen k is maximal for it."""
        points = unit_disk(5_000, seed=3)[1:]
        grid = PolarGrid.fit(points, np.zeros(2))
        from repro.geometry.polar import to_polar

        rho, theta = to_polar(points, np.zeros(2))
        ring, cell = grid.assign_polar(rho, theta)
        inner = ring < grid.k
        occupied = set(
            zip(ring[inner].tolist(), cell[inner].tolist())
        )
        for r in range(1, grid.k):
            for c in range(grid.cells_in_ring(r)):
                assert (r, c) in occupied, (r, c)

    def test_imagined_two_cells_inside_circle_0(self):
        """"If we imagine that there are two cells inside circle 0":
        the inner disk's area is exactly twice the common cell area."""
        grid = PolarGrid(center=np.zeros(2), r_min=0.0, r_max=1.0, k=5)
        assert grid.segment(0, 0).area() == pytest.approx(
            2.0 * grid.cell_volume()
        )

    def test_out_degree_6_is_attained(self):
        """III-C: "the resulting spanning tree will have maximum
        out-degree 6" — the bound is tight, not just an upper bound."""
        tree = build_polar_grid_tree(unit_disk(5_000, seed=4), 0, 6).tree
        assert tree.max_out_degree() == 6

    def test_representatives_connect_two_next_ring_cells(self):
        """III-B: "Each representative is connected to two
        representatives of next ring cells, aligned with its cell." """
        result = build_polar_grid_tree(unit_disk(5_000, seed=5), 0, 6)
        grid = result.grid
        tree = result.tree
        reps = set(result.representatives.tolist())
        # Count children of representatives that are themselves reps:
        # inner-ring reps must feed exactly two rep children.
        from repro.geometry.polar import to_polar

        rho, theta = to_polar(tree.points, tree.points[tree.root])
        ring, _cell = grid.assign_polar(rho, theta)
        rep_children = {rep: 0 for rep in reps}
        for node in range(tree.n):
            if node == tree.root:
                continue
            par = int(tree.parent[node])
            if par in rep_children and node in reps:
                rep_children[par] += 1
        inner_reps = [
            rep for rep in reps if ring[rep] <= grid.k - 2
        ]
        for rep in inner_reps:
            assert rep_children[rep] == 2, rep


class TestSectionIVAStatements:
    """The three wiring cases, verified white-box via wire_cells."""

    def _wire(self, cell_points):
        """Run binary wiring on a hand-built single-cell ring-1 grid."""
        from repro.core.core_network import wire_cells
        from repro.geometry.polar import SphericalTransform

        # Source at origin; a k=1 grid has D0 plus 2 outer cells.
        pts = [np.zeros(2)] + [np.asarray(p, float) for p in cell_points]
        points = np.stack(pts)
        tr = SphericalTransform(2)
        rho, t = tr.transform(points, points[0])
        grid = PolarGrid(
            center=points[0],
            r_min=0.0,
            r_max=float(rho.max()),
            k=1,
            transform=tr,
        )
        ring, cell = grid.assign(rho[1:], t[1:])
        gid = grid.global_id(ring, cell)
        order = np.lexsort((rho[1:], gid))
        nodes = (np.arange(1, points.shape[0]))[order]
        gids = gid[order]
        groups = []
        start = 0
        for i in range(1, len(gids) + 1):
            if i == len(gids) or gids[i] != gids[start]:
                groups.append((int(gids[start]), nodes[start:i].tolist()))
                start = i
        parent = np.full(points.shape[0], -1, dtype=np.int64)
        parent[0] = 0
        wire_cells(
            grid,
            0,
            groups,
            rho.tolist(),
            (t[:, 0].tolist(),),
            parent,
            binary=True,
            points=points.tolist(),
        )
        return parent

    def test_case_1_single_point_forwards(self):
        """"There is only one point in the cell. Make it a cell
        representative, and use it to connect..." — with one point the
        rep attaches straight to the upstream forwarder (the source)."""
        parent = self._wire([(0.9, 0.1)])
        assert parent[1] == 0

    def test_case_2_second_point_carries_links(self):
        """"There are two points in the cell ... Connect the
        representative directly to the other point." """
        # Both points in the same outer cell (similar angles).
        parent = self._wire([(0.8, 0.05), (0.95, 0.1)])
        inner, outer = (1, 2)  # point 1 is closer to the centre
        assert parent[inner] == 0  # rep hangs off the source
        assert parent[outer] == inner  # rep -> other point

    def test_case_3_rep_feeds_hub_and_forwarder(self):
        """"The two special points are connected directly to the
        representative point." (3+ points, with downstream cells)"""
        # Five points in one ring-1 cell... but a k=1 grid has no next
        # ring, so use k=2 geometry via the full builder instead: check
        # that in a degree-2 build no node exceeds out-degree 2 and the
        # representative of a populous inner cell has exactly 2 children.
        result = build_polar_grid_tree(unit_disk(3_000, seed=6), 0, 2)
        tree = result.tree
        degrees = tree.out_degrees()
        assert int(degrees.max()) <= 2
        # Populous inner cells: their reps must use both links.
        reps = result.representatives
        rep_degrees = degrees[reps]
        assert (rep_degrees == 2).sum() > len(reps) * 0.5


class TestSectionVStatements:
    def test_3d_full_construction_uses_degree_10(self):
        """"the straightforward extension of our algorithm builds a tree
        of out-degree 10" — attained, not just bounded."""
        tree = build_polar_grid_tree(unit_ball(8_000, dim=3, seed=7), 0, 10).tree
        assert tree.max_out_degree() == 10

    def test_runtime_claim_points_inspected_once(self):
        """"our algorithm inspects each point only once" during grid
        assignment — O(n) observable as near-flat per-point cost."""
        import time

        costs = []
        for n in (20_000, 80_000):
            points = unit_disk(n, seed=8)
            t0 = time.perf_counter()
            build_polar_grid_tree(points, 0, 6)
            costs.append((time.perf_counter() - t0) / n)
        assert costs[1] < costs[0] * 3.0
