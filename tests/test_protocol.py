"""Tests for the decentralised join/leave protocol simulation."""

import numpy as np
import pytest

from repro.overlay.protocol import DistributedJoinProtocol


def populate(proto: DistributedJoinProtocol, count: int, seed=0, scale=0.4):
    rng = np.random.default_rng(seed)
    outcomes = []
    for i in range(count):
        outcomes.append(
            proto.join(f"p{seed}-{i}", rng.normal(size=proto.dim) * scale)
        )
    return outcomes


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="vector"):
            DistributedJoinProtocol(1.0)
        with pytest.raises(ValueError, match="at least 2"):
            DistributedJoinProtocol((0.0, 0.0), max_out_degree=1)

    def test_initial_state(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        assert proto.n == 1
        assert proto.radius() == 0.0
        assert proto.mean_messages_per_join() == 0.0


class TestJoin:
    def test_first_join_attaches_to_source(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        outcome = proto.join("a", (0.5, 0.0))
        assert outcome.parent == "__source__"
        assert outcome.hops == 0
        assert outcome.probes >= 1

    def test_duplicate_rejected(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        proto.join("a", (0.5, 0.0))
        with pytest.raises(ValueError, match="already"):
            proto.join("a", (0.1, 0.1))

    def test_dim_mismatch(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        with pytest.raises(ValueError, match="shape"):
            proto.join("a", (1.0, 2.0, 3.0))

    def test_degree_respected(self):
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=2)
        populate(proto, 200, seed=1)
        proto.tree().validate(max_out_degree=2)

    def test_probe_counts_are_local(self):
        """A join probes O(depth x fan-out) members, far fewer than n."""
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
        populate(proto, 500, seed=2)
        rng = np.random.default_rng(3)
        outcome = proto.join("probe", rng.normal(size=2) * 0.4)
        assert outcome.probes < 120  # depth*5 at most, n=501 for contrast

    def test_delays_consistent_with_tree(self):
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=3)
        populate(proto, 120, seed=4)
        assert proto.radius() == pytest.approx(proto.tree().radius())

    def test_message_accounting(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        outcomes = populate(proto, 50, seed=5)
        assert proto.total_messages == sum(o.probes for o in outcomes)
        assert proto.join_count == 50
        assert proto.mean_messages_per_join() == pytest.approx(
            proto.total_messages / 50
        )


class TestLeave:
    def test_leaf_leave(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        populate(proto, 30, seed=6)
        before = proto.n
        proto.leave("p6-29")
        assert proto.n == before - 1
        proto.tree().validate(max_out_degree=6)

    def test_relay_leave_recovers_orphans(self):
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=3)
        populate(proto, 100, seed=7)
        tree = proto.tree()
        degrees = tree.out_degrees()
        relay = int(np.flatnonzero(degrees[1:] > 1)[0]) + 1
        name = proto._names[relay]
        messages = proto.leave(name)
        assert messages > 0
        proto.tree().validate(max_out_degree=3)
        assert proto.n == 100  # 101 members minus the relay

    def test_source_protected(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        with pytest.raises(ValueError, match="source"):
            proto.leave("__source__")

    def test_unknown_member(self):
        proto = DistributedJoinProtocol((0.0, 0.0))
        with pytest.raises(ValueError, match="unknown"):
            proto.leave("ghost")

    def test_delays_refreshed_after_leave(self):
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=3)
        populate(proto, 80, seed=8)
        tree = proto.tree()
        relay = int(np.flatnonzero(tree.out_degrees()[1:] > 1)[0]) + 1
        proto.leave(proto._names[relay])
        assert proto.radius() == pytest.approx(proto.tree().radius())

    def test_churn_soak(self):
        rng = np.random.default_rng(9)
        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=3)
        alive = []
        counter = 0
        for _ in range(400):
            if not alive or rng.random() < 0.65:
                name = f"s{counter}"
                counter += 1
                proto.join(name, rng.normal(size=2) * 0.4)
                alive.append(name)
            else:
                proto.leave(alive.pop(int(rng.integers(0, len(alive)))))
        proto.tree().validate(max_out_degree=3)
        assert proto.n == len(alive) + 1


class TestQuality:
    def test_decentralised_close_to_centralised(self):
        """The protocol's tree should be within a modest factor of the
        global-knowledge greedy on the same join sequence."""
        from repro.overlay.dynamic import DynamicOverlay

        rng = np.random.default_rng(10)
        coords = [rng.normal(size=2) * 0.4 for _ in range(400)]

        proto = DistributedJoinProtocol((0.0, 0.0), max_out_degree=4)
        central = DynamicOverlay(
            (0.0, 0.0), max_out_degree=4, rebuild_threshold=None
        )
        for i, c in enumerate(coords):
            proto.join(f"m{i}", c)
            central.join(f"m{i}", c)
        assert proto.radius() <= 2.0 * central.radius()
