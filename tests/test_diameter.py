"""Tests for the minimum-diameter variant (paper's Conclusion)."""

import numpy as np
import pytest

from repro.baselines.exact import optimal_diameter
from repro.core.diameter import (
    approximate_center,
    build_min_diameter_tree,
    tree_diameter,
)
from repro.core.tree import MulticastTree
from repro.workloads.generators import unit_ball, unit_disk


def chain_tree(xs) -> MulticastTree:
    n = len(xs)
    points = np.stack([np.asarray(xs, dtype=float), np.zeros(n)], axis=1)
    parent = np.arange(-1, n - 1)
    parent[0] = 0
    return MulticastTree(points=points, parent=parent, root=0)


class TestApproximateCenter:
    def test_symmetric_cloud(self):
        pts = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        center = approximate_center(pts)
        assert np.allclose(center, [0.0, 0.0], atol=1e-9)

    def test_covers_all_points(self, rng):
        pts = rng.normal(size=(500, 3))
        center = approximate_center(pts)
        radii = np.linalg.norm(pts - center, axis=1)
        direct = np.linalg.norm(pts[:, None] - pts[None, :], axis=2).max()
        # Ritter's ball radius is within ~a few % of optimal; the optimal
        # radius is at most the diameter, at least half of it.
        assert radii.max() <= direct * 0.80

    def test_single_point(self):
        center = approximate_center(np.array([[2.0, 3.0]]))
        assert np.allclose(center, [2.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            approximate_center(np.zeros((0, 2)))


class TestTreeDiameter:
    def test_chain(self):
        assert tree_diameter(chain_tree([0, 1, 2, 5])) == pytest.approx(5.0)

    def test_star(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [-3.0, 0.0], [0.0, 1.0]])
        tree = MulticastTree(pts, np.zeros(4, dtype=np.int64), 0)
        assert tree_diameter(tree) == pytest.approx(5.0)

    def test_diameter_not_through_root(self):
        """Two deep branches under one child: the diameter path avoids
        the root entirely; two-sweep must still find it."""
        pts = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.1, 5.0], [0.1, -5.0], [3.0, 0.0]]
        )
        parent = np.array([0, 0, 1, 1, 0])
        tree = MulticastTree(pts, parent, 0)
        assert tree_diameter(tree) == pytest.approx(10.0)

    def test_single_node(self):
        tree = MulticastTree(np.zeros((1, 2)), np.array([0]), 0)
        assert tree_diameter(tree) == 0.0

    def test_diameter_bounds_vs_radius(self, rng):
        from repro.core.builder import build_polar_grid_tree

        points = unit_disk(1000, seed=70)
        tree = build_polar_grid_tree(points, 0, 6).tree
        diameter = tree_diameter(tree)
        radius = tree.radius()
        assert radius <= diameter <= 2 * radius + 1e-9

    def test_matches_brute_force(self, rng):
        """Two-sweep vs O(n^2) pairwise oracle on random small trees."""
        for seed in range(10):
            local = np.random.default_rng(seed)
            n = 20
            points = local.normal(size=(n, 2))
            parent = np.zeros(n, dtype=np.int64)
            for i in range(1, n):
                parent[i] = local.integers(0, i)
            tree = MulticastTree(points, parent, 0)
            delays = tree.root_delays()
            depths = tree.depths()
            # Brute force via LCA walks.
            worst = 0.0
            for u in range(n):
                for v in range(u + 1, n):
                    a, b = u, v
                    while a != b:
                        if depths[a] >= depths[b]:
                            a = int(parent[a])
                        else:
                            b = int(parent[b])
                    worst = max(worst, delays[u] + delays[v] - 2 * delays[a])
            assert tree_diameter(tree) == pytest.approx(worst)


class TestBuildMinDiameter:
    def test_valid_tree_and_sane_diameter(self):
        points = unit_disk(3000, seed=71)
        result, diameter = build_min_diameter_tree(points, 6)
        result.tree.validate(max_out_degree=6)
        # Lower bound: the farthest pair must be connected.
        pts = points
        spread = 0.0
        for i in range(0, 3000, 97):  # sampled farthest-pair lower bound
            spread = max(
                spread, float(np.linalg.norm(pts - pts[i], axis=1).max())
            )
        assert diameter >= spread - 1e-9
        assert diameter <= 2.2 * spread

    def test_root_is_central(self):
        points = unit_disk(2000, seed=72)
        result, _ = build_min_diameter_tree(points, 6)
        root_radius = float(np.linalg.norm(points[result.tree.root]))
        assert root_radius < 0.1  # near the disk centre

    def test_converges_with_n(self):
        """Diameter approaches the cloud diameter (~2 for the unit disk)
        as n grows — the paper's sphere-case optimality claim."""
        _, small = build_min_diameter_tree(unit_disk(300, seed=73), 6)
        _, large = build_min_diameter_tree(unit_disk(30_000, seed=73), 6)
        assert large < small
        assert large < 2.3

    def test_3d(self):
        points = unit_ball(2000, dim=3, seed=74)
        result, diameter = build_min_diameter_tree(points, 10)
        result.tree.validate(max_out_degree=10)
        assert diameter > 0

    def test_kwargs_forwarded(self):
        points = unit_disk(500, seed=75)
        result, _ = build_min_diameter_tree(points, 6, k=3)
        assert result.rings == 3


class TestAgainstExactOptimum:
    def test_within_reasonable_factor_of_optimal_diameter(self):
        """No constant-factor theorem exists for arbitrary clouds (the
        paper proves factor 2 for convex regions asymptotically), but on
        tiny random instances the heuristic should stay within a small
        factor of the exhaustive optimum."""
        for seed in range(6):
            local = np.random.default_rng(seed + 200)
            pts = local.uniform(-1, 1, size=(6, 2))
            opt = optimal_diameter(pts, max_out_degree=2)
            _, heur = build_min_diameter_tree(pts, 2)
            assert heur <= 4.0 * opt + 1e-9, (seed, heur, opt)

    def test_exact_diameter_basics(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        # Chain rooted at the middle: diameter 2 (the line's length).
        assert optimal_diameter(pts, 2) == pytest.approx(2.0)

    def test_exact_diameter_beats_fixed_root(self):
        """Root choice matters: the free-root optimum is at most the
        radius-optimal-from-node-0 tree's diameter."""
        from repro.baselines.exact import optimal_radius_tree

        local = np.random.default_rng(9)
        pts = local.uniform(-1, 1, size=(5, 2))
        fixed = tree_diameter(optimal_radius_tree(pts, 0, 2))
        free = optimal_diameter(pts, 2)
        assert free <= fixed + 1e-9

    def test_exact_diameter_guards(self):
        with pytest.raises(ValueError, match="capped"):
            optimal_diameter(np.zeros((9, 2)), 2)
        with pytest.raises(ValueError, match="at least 1"):
            optimal_diameter(np.zeros((3, 2)), 0)
        assert optimal_diameter(np.zeros((1, 2)), 1) == 0.0
