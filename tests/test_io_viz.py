"""Tests for tree serialization and SVG rendering."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.io import load_tree, save_tree
from repro.core.tree import MulticastTree, TreeInvariantError
from repro.viz import save_svg, tree_to_svg
from repro.workloads.generators import unit_ball, unit_disk


@pytest.fixture
def tree():
    return build_polar_grid_tree(unit_disk(200, seed=80), 0, 6).tree


class TestSerialization:
    @pytest.mark.parametrize("suffix", [".npz", ".json"])
    def test_roundtrip(self, tree, tmp_path, suffix):
        path = save_tree(tree, tmp_path / f"tree{suffix}")
        loaded = load_tree(path)
        assert np.array_equal(loaded.parent, tree.parent)
        assert np.allclose(loaded.points, tree.points)
        assert loaded.root == tree.root
        assert loaded.radius() == pytest.approx(tree.radius())

    def test_3d_roundtrip(self, tmp_path):
        tree = build_polar_grid_tree(unit_ball(150, dim=3, seed=81), 0, 10).tree
        loaded = load_tree(save_tree(tree, tmp_path / "t3.npz"))
        assert loaded.dim == 3

    def test_unknown_suffix(self, tree, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            save_tree(tree, tmp_path / "tree.xml")
        with pytest.raises(ValueError, match="suffix"):
            load_tree(tmp_path / "tree.xml")

    def test_version_check_json(self, tree, tmp_path):
        path = save_tree(tree, tmp_path / "tree.json")
        text = path.read_text().replace('"version": 1', '"version": 99')
        path.write_text(text)
        with pytest.raises(ValueError, match="version"):
            load_tree(path)

    def test_corrupted_parent_rejected_on_load(self, tree, tmp_path):
        import json

        path = save_tree(tree, tmp_path / "tree.json")
        payload = json.loads(path.read_text())
        payload["parent"][5] = 5  # a second root: invalid
        path.write_text(json.dumps(payload))
        with pytest.raises(TreeInvariantError):
            load_tree(path)


class TestSvg:
    def test_renders_valid_svg(self, tree):
        svg = tree_to_svg(tree)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        # n-1 edges, n-1 receiver dots, one source ring.
        assert svg.count("<line") == tree.n - 1
        assert svg.count("<circle") == tree.n

    def test_save_svg(self, tree, tmp_path):
        path = save_svg(tree, tmp_path / "tree.svg", size=400)
        content = path.read_text()
        assert 'width="400"' in content

    def test_rejects_3d(self):
        tree = build_polar_grid_tree(unit_ball(50, dim=3, seed=82), 0, 10).tree
        with pytest.raises(ValueError, match="2-D"):
            tree_to_svg(tree)

    def test_node_cap(self, tree):
        with pytest.raises(ValueError, match="capped"):
            tree_to_svg(tree, max_nodes=10)

    def test_single_node(self):
        tree = MulticastTree(np.zeros((1, 2)), np.array([0]), 0)
        svg = tree_to_svg(tree)
        assert "<line" not in svg
        assert svg.count("<circle") == 1

    def test_coordinates_within_canvas(self, tree):
        svg = tree_to_svg(tree, size=500, margin=10)
        import re

        coords = [
            float(v)
            for v in re.findall(r'(?:x[12]|y[12]|cx|cy)="([-\d.]+)"', svg)
        ]
        assert min(coords) >= 0.0
        assert max(coords) <= 500.0
