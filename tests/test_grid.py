"""Tests for the 2-D polar grid (Section III-A geometry)."""

import numpy as np
import pytest

from repro.core.grid import PolarGrid
from repro.geometry.polar import TWO_PI, to_polar
from repro.workloads.generators import unit_disk


def make_grid(k=4, r_max=1.0, r_min=0.0):
    return PolarGrid(center=np.zeros(2), r_min=r_min, r_max=r_max, k=k)


class TestRadii:
    def test_paper_radii_on_unit_disk(self):
        """r_i = 1/sqrt(2)^(k-i) — equation (3)."""
        k = 5
        grid = make_grid(k=k)
        for i in range(k + 1):
            expected = (1.0 / np.sqrt(2.0)) ** (k - i)
            assert grid.ring_radius(i) == pytest.approx(expected)

    def test_outer_radius_is_r_max(self):
        grid = make_grid(k=3, r_max=2.5)
        assert grid.ring_radius(3) == pytest.approx(2.5)

    def test_annulus_radii_monotone(self):
        grid = make_grid(k=6, r_min=0.3, r_max=1.7)
        radii = grid.ring_radii()
        assert np.all(np.diff(radii) > 0)
        assert radii[0] > 0.3
        assert radii[-1] == pytest.approx(1.7)

    def test_ring_index_out_of_range(self):
        grid = make_grid(k=3)
        with pytest.raises(ValueError, match="ring index"):
            grid.ring_radius(4)


class TestEqualArea:
    @pytest.mark.parametrize("r_min", [0.0, 0.4])
    def test_all_cells_have_equal_area(self, r_min):
        grid = make_grid(k=5, r_min=r_min)
        areas = []
        for ring in range(1, grid.k + 1):
            seg = grid.segment(ring, 0)
            areas.append(seg.area())
            # All cells of one ring are congruent; spot-check another.
            other = grid.segment(ring, grid.cells_in_ring(ring) - 1)
            assert other.area() == pytest.approx(seg.area())
        assert np.allclose(areas, areas[0])
        # The inner region D0 has exactly twice the cell area ("imagine
        # that there are two cells inside circle 0").
        d0 = grid.segment(0, 0)
        assert d0.area() == pytest.approx(2 * areas[0])

    def test_cell_volume_matches_segment_area(self):
        grid = make_grid(k=4)
        assert grid.cell_volume() == pytest.approx(grid.segment(2, 1).area())

    def test_total_cells(self):
        grid = make_grid(k=4)
        assert grid.total_cells == 2**5 - 1
        assert grid.cells_in_ring(0) == 1
        assert grid.cells_in_ring(4) == 16


class TestAlignment:
    def test_child_cells_2d(self):
        grid = make_grid(k=4)
        assert grid.child_cells(2, 1) == ((3, 2), (3, 3))
        assert grid.child_cells(0, 0) == ((1, 0), (1, 1))
        assert grid.child_cells(4, 3) == ()

    def test_parent_cell_2d(self):
        grid = make_grid(k=4)
        assert grid.parent_cell(3, 5) == (2, 2)
        assert grid.parent_cell(1, 1) == (0, 0)
        with pytest.raises(ValueError, match="no parent"):
            grid.parent_cell(0, 0)

    def test_parent_child_inverse(self):
        grid = make_grid(k=6)
        for ring in range(0, 6):
            for cell in range(grid.cells_in_ring(ring)):
                for child in grid.child_cells(ring, cell):
                    assert grid.parent_cell(*child) == (ring, cell)

    def test_child_segment_nested_in_parent(self):
        grid = make_grid(k=5)
        for ring in range(1, 5):
            seg = grid.segment(ring, 1)
            for child_ring, child_cell in grid.child_cells(ring, 1):
                child = grid.segment(child_ring, child_cell)
                # Same angular span coverage, outward radial interval.
                assert child.r_inner == pytest.approx(seg.r_outer)
                assert child.theta_start >= seg.theta_start - 1e-12
                assert (
                    child.theta_start + child.theta_span
                    <= seg.theta_start + seg.theta_span + 1e-12
                )


class TestAssignment:
    def test_assignment_matches_geometry(self, rng):
        grid = make_grid(k=5)
        pts = unit_disk(400, seed=3)[1:]
        rho, theta = to_polar(pts, np.zeros(2))
        ring, cell = grid.assign_polar(rho, theta)
        for i in range(0, 400 - 1, 7):  # spot-check a subsample
            seg = grid.segment(int(ring[i]), int(cell[i]))
            assert seg.contains(rho[i], theta[i]), i

    def test_boundary_points(self):
        grid = make_grid(k=3)
        radii = grid.ring_radii()
        # Points exactly on circle i belong to ring i (inclusive outer).
        rho = radii.copy()
        theta = np.zeros_like(rho)
        ring, _ = grid.assign_polar(rho, theta)
        assert ring.tolist() == [0, 1, 2, 3]

    def test_center_point_in_ring0(self):
        grid = make_grid(k=3)
        ring, cell = grid.assign_polar(np.array([0.0]), np.array([0.0]))
        assert ring[0] == 0
        assert cell[0] == 0

    def test_beyond_r_max_clips_to_outer_ring(self):
        grid = make_grid(k=3)
        ring, _ = grid.assign_polar(np.array([1.0 + 1e-12]), np.array([0.0]))
        assert ring[0] == 3

    def test_angle_binning(self):
        grid = make_grid(k=2)
        # Ring 2 has 4 cells of span pi/2 starting at angle 0.
        theta = np.array([0.1, np.pi / 2 + 0.1, np.pi + 0.1, 3 * np.pi / 2 + 0.1])
        rho = np.full(4, 0.9)
        ring, cell = grid.assign_polar(rho, theta)
        assert ring.tolist() == [2, 2, 2, 2]
        assert cell.tolist() == [0, 1, 2, 3]


class TestOccupancy:
    def test_occupancy_ok_full_grid(self):
        grid = make_grid(k=3)
        # One point in every inner cell (rings 1..2): 2 + 4 cells.
        rho, theta = [], []
        for ring in range(1, 3):
            seg_count = grid.cells_in_ring(ring)
            for c in range(seg_count):
                seg = grid.segment(ring, c)
                rho.append((seg.r_inner + seg.r_outer) / 2)
                theta.append(seg.theta_start + seg.theta_span / 2)
        ring_idx, cell_idx = grid.assign_polar(np.array(rho), np.array(theta))
        assert grid.occupancy_ok(ring_idx, cell_idx)

    def test_occupancy_fails_with_hole(self):
        grid = make_grid(k=3)
        seg = grid.segment(1, 0)
        rho = np.array([(seg.r_inner + seg.r_outer) / 2])
        theta = np.array([seg.theta_start + 0.01])
        ring_idx, cell_idx = grid.assign_polar(rho, theta)
        assert not grid.occupancy_ok(ring_idx, cell_idx)

    def test_k1_always_ok(self):
        grid = make_grid(k=1)
        ring, cell = grid.assign_polar(np.array([0.9]), np.array([0.0]))
        assert grid.occupancy_ok(ring, cell)

    def test_fit_chooses_feasible_k(self):
        pts = unit_disk(2000, seed=5)[1:]
        grid = PolarGrid.fit(pts, np.zeros(2))
        rho, theta = to_polar(pts, np.zeros(2))
        ring, cell = grid.assign_polar(rho, theta)
        assert grid.occupancy_ok(ring, cell)
        # And k+1 must NOT be feasible (k is maximal).
        bigger = PolarGrid(
            center=np.zeros(2), r_min=0.0, r_max=grid.r_max, k=grid.k + 1
        )
        ring2, cell2 = bigger.assign_polar(rho, theta)
        assert not bigger.occupancy_ok(ring2, cell2)

    def test_fit_rejects_zero_extent(self):
        pts = np.zeros((5, 2))
        with pytest.raises(ValueError, match="within r_min"):
            PolarGrid.fit(pts, np.zeros(2))


class TestConnectivityRule:
    def test_full_implies_connected(self):
        pts = unit_disk(500, seed=8)[1:]
        grid = PolarGrid.fit(pts, np.zeros(2))
        rho, theta = to_polar(pts, np.zeros(2))
        ring, cell = grid.assign_polar(rho, theta)
        assert grid.occupancy_ok(ring, cell)
        assert grid.connectivity_ok(ring, cell)

    def test_orphan_cell_fails_connectivity(self):
        grid = make_grid(k=3)
        # A point in ring 3 whose ring-2 parent cell is empty.
        seg = grid.segment(3, 5)
        rho = np.array([(seg.r_inner + seg.r_outer) / 2])
        theta = np.array([seg.theta_start + seg.theta_span / 2])
        ring, cell = grid.assign_polar(rho, theta)
        assert not grid.connectivity_ok(ring, cell)

    def test_ring1_only_is_connected(self):
        grid = make_grid(k=3)
        seg = grid.segment(1, 1)
        rho = np.array([(seg.r_inner + seg.r_outer) / 2])
        theta = np.array([seg.theta_start + seg.theta_span / 2])
        ring, cell = grid.assign_polar(rho, theta)
        # Ring-1 cells hang off the source directly: always connected.
        assert grid.connectivity_ok(ring, cell)

    def test_sector_population_gets_deep_grid(self):
        """Receivers confined to one quadrant: property 3 collapses but
        the connected rule keeps a useful grid depth."""
        from repro.core.grid_nd import choose_ring_count

        rng = np.random.default_rng(4)
        theta = rng.uniform(0, np.pi / 4, 3000)
        rho = np.sqrt(rng.uniform(0, 1, 3000))
        pts = np.stack([rho * np.cos(theta), rho * np.sin(theta)], axis=1)

        def factory(k):
            return PolarGrid(center=np.zeros(2), r_min=0.0, r_max=1.0, k=k)

        t = (to_polar(pts, np.zeros(2))[1] / TWO_PI)[:, None]
        k_full = choose_ring_count(factory, rho, t, occupancy="full")
        k_conn = choose_ring_count(factory, rho, t, occupancy="connected")
        assert k_conn >= k_full + 3


class TestValidationErrors:
    def test_rejects_3d_center(self):
        with pytest.raises(ValueError, match="2-D"):
            PolarGrid(center=np.zeros(3), r_min=0.0, r_max=1.0, k=2)

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError, match="r_min"):
            make_grid(k=2, r_min=1.0, r_max=0.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="ring count"):
            make_grid(k=0)
        with pytest.raises(ValueError, match="ring count"):
            make_grid(k=99)
