"""Tests for the resilience layer (repro.experiments.resilience).

The contracts under test, straight from the determinism notes in the
module docstring:

* retry seeds derive from ``SeedSequence((base_seed, trial_index,
  attempt))`` — reproducible, and never perturbing untouched trials;
* a trial that exhausts its retries degrades to a structured
  :class:`TrialFailure` row while the sweep continues;
* worker crashes and hangs under the process backend are charged to the
  guilty trial only — bystanders re-run with their original attempt-0
  seed and stay byte-identical;
* the checkpoint journal replays completed trials byte-identically,
  tolerates a torn final line (the crash case it exists for), and
  refuses to resume against mismatched parameters.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro.obs as obs
from repro.experiments.parallel import TrialFailure, TrialTask, run_task
from repro.experiments.resilience import (
    CheckpointJournal,
    JournalMismatch,
    ResiliencePolicy,
    ResilientProcessExecutor,
    ResilientSerialExecutor,
    attempt_task,
    make_resilient_executor,
    retry_seed,
    trial_key,
)
from repro.experiments.runner import TrialRecord, run_trials
from repro.testing import faults


def task_for(trial, n=40, degree=6, seed=0, **kw):
    """A TrialTask stamped the way the sweeps stamp them."""
    return TrialTask(
        n=n,
        max_out_degree=degree,
        dim=2,
        seed=seed + trial,
        trial_index=trial,
        **kw,
    )


def strip_timing(records):
    """Records with the wall-clock field zeroed — the deterministic part."""
    return [dataclasses.replace(r, seconds=0.0) for r in records]


@pytest.fixture
def metrics():
    """Observability switched on for the test, reset afterwards."""
    obs.reset()
    obs.enable()
    yield obs
    obs.reset()


def counter(name):
    return obs.snapshot().get(name, {}).get("value", 0.0)


# ----------------------------------------------------------------------
# policy + seed derivation


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_factor=0.5)

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(
            retries=5, backoff_base=1.0, backoff_factor=2.0, backoff_max=3.0
        )
        task = task_for(0)
        delays = [policy.backoff_seconds(task, k) for k in (1, 2, 3, 4)]
        # jitter is in [0.5, 1.5), so bounds are raw/2 .. raw*1.5
        assert 0.5 <= delays[0] < 1.5
        assert 1.0 <= delays[1] < 3.0
        assert all(d < 4.5 for d in delays)  # capped at 3.0 * 1.5

    def test_backoff_is_deterministic(self):
        policy = ResiliencePolicy(retries=2)
        task = task_for(3, seed=17)
        assert policy.backoff_seconds(task, 1) == policy.backoff_seconds(
            task, 1
        )


class TestRetrySeeds:
    def test_matches_documented_derivation(self):
        task = task_for(trial=4, seed=100)  # base_seed=100, index=4
        expected = int(
            np.random.SeedSequence((100, 4, 2)).generate_state(
                1, dtype=np.uint64
            )[0]
        )
        assert retry_seed(task, 2) == expected

    def test_attempt_zero_is_the_original_task(self):
        task = task_for(2)
        assert attempt_task(task, 0) is task

    def test_attempt_zero_has_no_derived_seed(self):
        with pytest.raises(ValueError):
            retry_seed(task_for(0), 0)

    def test_retries_do_not_perturb_other_trials(self):
        # The retried trial's neighbours keep seed = base + index
        # regardless of how many times trial 3 retried.
        tasks = [task_for(t, seed=7) for t in range(6)]
        retried = attempt_task(tasks[3], 5)
        assert retried.seed != tasks[3].seed
        for t, task in enumerate(tasks):
            if t != 3:
                assert attempt_task(task, 0).seed == 7 + t

    def test_distinct_attempts_distinct_seeds(self):
        task = task_for(0)
        seeds = {retry_seed(task, k) for k in range(1, 6)}
        assert len(seeds) == 5

    def test_trial_key_format(self):
        assert trial_key(task_for(2, n=60, degree=6)) == "n60:d6:dim2:t2"


# ----------------------------------------------------------------------
# serial backend


class TestSerialResilience:
    def test_clean_run_matches_plain_engine(self):
        baseline = run_trials(n=40, max_out_degree=6, trials=3)
        resilient = run_trials(
            n=40,
            max_out_degree=6,
            trials=3,
            resilience=ResiliencePolicy(retries=2),
        )
        assert strip_timing(baseline) == strip_timing(resilient)

    def test_error_retried_to_success(self, metrics):
        # Fault: attempt 0 of trial 1 errors; the retry (attempt 1)
        # matches nothing and succeeds.
        policy = ResiliencePolicy(retries=2, backoff_base=0.0)
        with faults.injected(faults.FaultSpec("error", trial=1, attempt=0)):
            records = run_trials(
                n=40, max_out_degree=6, trials=3, resilience=policy
            )
        assert len(records) == 3
        assert all(isinstance(r, TrialRecord) for r in records)
        assert counter("resilience.retries.total") == 1
        assert counter("resilience.errors.total") == 1

    def test_exhausted_retries_degrade_to_failure_row(self, metrics):
        # Every attempt of trial 0 errors; trials 1..2 must still run.
        policy = ResiliencePolicy(retries=1, backoff_base=0.0)
        failures = []
        with faults.injected(faults.FaultSpec("error", trial=0)):
            records = run_trials(
                n=40,
                max_out_degree=6,
                trials=3,
                resilience=policy,
                failures=failures,
            )
        assert len(records) == 2
        assert len(failures) == 1
        assert failures[0].error_type == "RuntimeError"
        assert failures[0].attempts == 2
        assert counter("resilience.trial_failures.total") == 1

    def test_oom_simulation_is_caught(self):
        policy = ResiliencePolicy(retries=0, backoff_base=0.0)
        failures = []
        with faults.injected(faults.FaultSpec("oom", trial=0)):
            run_trials(
                n=40,
                max_out_degree=6,
                trials=1,
                resilience=policy,
                failures=failures,
            )
        assert failures and failures[0].error_type == "MemoryError"

    def test_timeout_bounds_an_attempt(self, metrics):
        # Trial 0 hangs on attempt 0; the 0.3s deadline fires, the retry
        # succeeds. Generous hang length keeps slow CI honest.
        policy = ResiliencePolicy(
            timeout=0.3, retries=1, backoff_base=0.0
        )
        with faults.injected(
            faults.FaultSpec("hang", trial=0, attempt=0, seconds=30.0)
        ):
            records = run_trials(
                n=40, max_out_degree=6, trials=2, resilience=policy
            )
        assert len(records) == 2
        assert counter("resilience.timeouts.total") == 1

    def test_retried_record_uses_derived_seed(self):
        # The retried trial's record must equal the record the derived
        # retry seed produces — not the original seed's record.
        policy = ResiliencePolicy(retries=1, backoff_base=0.0)
        task = task_for(0, n=40)
        with faults.injected(faults.FaultSpec("error", trial=0, attempt=0)):
            with make_resilient_executor("serial", None, policy) as ex:
                (record,) = list(ex.imap([task]))
        assert isinstance(record, TrialRecord)
        expected = run_task(attempt_task(task, 1))
        assert strip_timing([record]) == strip_timing([expected])


# ----------------------------------------------------------------------
# process backend (forced, so single-CPU hosts still exercise it)


class TestProcessResilience:
    def test_crash_isolated_to_guilty_trial(self):
        # Trial 1's worker dies with os._exit; with retries=0 the trial
        # is retired as a WorkerCrash row, and trials 0/2 stay
        # byte-identical to a serial run.
        policy = ResiliencePolicy(retries=0, backoff_base=0.0)
        tasks = [task_for(t, n=40) for t in range(3)]
        with faults.injected(faults.FaultSpec("crash", trial=1)):
            with ResilientProcessExecutor(policy, max_workers=2) as ex:
                outcomes = list(ex.imap(tasks))
        assert isinstance(outcomes[1], TrialFailure)
        assert outcomes[1].error_type == "WorkerCrash"
        baseline = [
            o
            for o in run_trials(n=40, max_out_degree=6, trials=3)
        ]
        assert strip_timing([outcomes[0], outcomes[2]]) == strip_timing(
            [baseline[0], baseline[2]]
        )

    def test_crash_retried_on_fresh_worker(self):
        # Attempt 0 crashes; attempt 1 (derived seed, no matching fault)
        # runs on a rebuilt pool and succeeds.
        policy = ResiliencePolicy(retries=1, backoff_base=0.0)
        tasks = [task_for(t, n=40) for t in range(2)]
        with faults.injected(faults.FaultSpec("crash", trial=0, attempt=0)):
            with ResilientProcessExecutor(policy, max_workers=2) as ex:
                outcomes = list(ex.imap(tasks))
        assert all(isinstance(o, TrialRecord) for o in outcomes)
        assert strip_timing([outcomes[0]]) == strip_timing(
            [run_task(attempt_task(tasks[0], 1))]
        )
        assert strip_timing([outcomes[1]]) == strip_timing(
            [run_task(tasks[1])]
        )

    def test_hang_reclaimed_by_deadline(self, metrics):
        policy = ResiliencePolicy(
            timeout=1.0, retries=0, backoff_base=0.0
        )
        tasks = [task_for(t, n=40) for t in range(2)]
        with faults.injected(
            faults.FaultSpec("hang", trial=0, seconds=60.0)
        ):
            with ResilientProcessExecutor(policy, max_workers=2) as ex:
                outcomes = list(ex.imap(tasks))
        assert isinstance(outcomes[0], TrialFailure)
        assert outcomes[0].error_type == "TrialTimeout"
        assert isinstance(outcomes[1], TrialRecord)
        assert counter("resilience.timeouts.total") >= 1

    def test_outcomes_arrive_in_task_order(self):
        policy = ResiliencePolicy(retries=0)
        tasks = [task_for(t, n=30) for t in range(5)]
        with ResilientProcessExecutor(policy, max_workers=2) as ex:
            outcomes = list(ex.imap(tasks))
        expected = [run_task(t) for t in tasks]
        assert strip_timing(outcomes) == strip_timing(expected)

    def test_close_is_idempotent(self):
        ex = ResilientProcessExecutor(ResiliencePolicy(), max_workers=1)
        ex.close()
        ex.close()


class TestMakeResilientExecutor:
    def test_serial_request(self):
        with make_resilient_executor("serial", None, ResiliencePolicy()) as ex:
            assert isinstance(ex, ResilientSerialExecutor)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            make_resilient_executor("threads", None, ResiliencePolicy())

    def test_forced_process_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PROCESS_ENGINE", "1")
        with make_resilient_executor(
            "process", 2, ResiliencePolicy()
        ) as ex:
            assert isinstance(ex, ResilientProcessExecutor)


# ----------------------------------------------------------------------
# checkpoint journal


class TestCheckpointJournal:
    PARAMS = {"command": "table1", "seed": 0, "trials": 3, "sizes": [40]}

    def write_some(self, path):
        records = run_trials(n=40, max_out_degree=6, trials=2)
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            for t, record in enumerate(records):
                journal.record(f"n40:d6:dim2:t{t}", record)
        return records

    def test_replay_is_byte_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = self.write_some(path)
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            assert journal.completed_count == 2
            for t, record in enumerate(records):
                assert journal.replay(f"n40:d6:dim2:t{t}") == record
            assert journal.replay("n40:d6:dim2:t9") is None

    def test_failure_rows_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        failure = TrialFailure(
            task=task_for(0, n=40),
            error_type="RuntimeError",
            error="injected",
            attempts=2,
        )
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            journal.record("n40:d6:dim2:t0", failure)
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            replayed = journal.replay("n40:d6:dim2:t0")
        assert isinstance(replayed, TrialFailure)
        assert replayed.error_type == "RuntimeError"
        assert replayed.attempts == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        # The crash case the journal exists for: a record truncated
        # mid-write. The torn tail is discarded, the prefix survives.
        path = tmp_path / "j.jsonl"
        self.write_some(path)
        with path.open("a") as fh:
            fh.write('{"type": "record", "key": "n40:d6:dim2:t2", "rec')
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            assert journal.completed_count == 2

    def test_torn_tail_truncated_before_append(self, tmp_path):
        # Appending after a torn partial line would weld two records
        # onto one line and corrupt the journal for the *second*
        # resume. open() must truncate the tail first.
        path = tmp_path / "j.jsonl"
        records = self.write_some(path)
        clean = path.read_bytes()
        with path.open("a") as fh:
            fh.write('{"type": "record", "key": "n40:d6:dim2:t2", "rec')
        extra = run_trials(n=40, max_out_degree=6, trials=3)[2]
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            journal.record("n40:d6:dim2:t2", extra)
        # The torn tail is gone; the clean prefix is byte-preserved.
        assert path.read_bytes().startswith(clean)
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            assert journal.completed_count == 3
            assert journal.replay("n40:d6:dim2:t2") == extra
            assert journal.replay("n40:d6:dim2:t0") == records[0]

    def test_unterminated_final_line_treated_as_torn(self, tmp_path):
        # A parseable final line without its newline never finished
        # fsync — drop it rather than trust it.
        path = tmp_path / "j.jsonl"
        self.write_some(path)
        content = path.read_bytes()
        path.write_bytes(content.rstrip(b"\n"))
        with CheckpointJournal(path, params=self.PARAMS) as journal:
            assert journal.completed_count == 1

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_some(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear a middle line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            CheckpointJournal(path, params=self.PARAMS).open()

    def test_params_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_some(path)
        other = dict(self.PARAMS, seed=1)
        with pytest.raises(JournalMismatch):
            CheckpointJournal(path, params=other).open()

    def test_missing_header_refused(self, tmp_path):
        # Not a journal at all (no header line) — refuse to resume.
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "record", "key": "x", "record": {}}\n')
        with pytest.raises(JournalMismatch):
            CheckpointJournal(path, params=self.PARAMS).open()

    def test_header_written_first(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_some(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["params"]["command"] == "table1"


class TestResumeThroughRunner:
    def test_resumed_run_replays_and_completes(self, tmp_path, metrics):
        path = tmp_path / "j.jsonl"
        policy = ResiliencePolicy(retries=0)
        kwargs = dict(
            n=40, max_out_degree=6, trials=4, resilience=policy
        )
        with CheckpointJournal(path, params=None) as journal:
            full = run_trials(journal=journal, **kwargs)

        # Truncate to the header + first two records, as a kill would.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")

        with CheckpointJournal(path, params=None) as journal:
            resumed = run_trials(journal=journal, **kwargs)
        assert strip_timing(resumed) == strip_timing(full)
        # The two surviving records were replayed, not recomputed...
        assert counter("resilience.resumed.total") == 2
        # ...byte-identically: replayed rows keep their original timing.
        assert resumed[0] == full[0]
        assert resumed[1] == full[1]
