"""The structural oracle: independent invariant re-derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.oracle import OracleReport, check_build_result, check_tree
from repro.baselines import capped_star, compact_tree
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.core.tree import MulticastTree, TreeInvariantError
from repro.workloads.generators import unit_ball, unit_disk


def codes(report: OracleReport) -> set[str]:
    return {v.code for v in report.violations}


class TestCleanTrees:
    @pytest.mark.parametrize("degree", [2, 6])
    def test_polar_grid_build_is_clean(self, degree):
        result = build_polar_grid_tree(unit_disk(400, seed=1), 0, degree)
        report = check_build_result(result)
        assert report.ok, report.render()
        # Every layer of the oracle actually ran.
        for expected in (
            "spanning-bfs",
            "degree-cap",
            "radius-recompute",
            "grid-occupancy[full]",
            "grid-representatives",
            "grid-rep-rule[inner-anchor]",
        ):
            assert expected in report.checks

    def test_min_radius_rule_is_checked_as_configured(self):
        result = build_polar_grid_tree(
            unit_disk(400, seed=2), 0, 6, representative_rule="min-radius"
        )
        report = check_build_result(
            result, representative_rule="min-radius"
        )
        assert report.ok, report.render()

    @pytest.mark.parametrize("dim", [2, 3])
    def test_other_builders_are_clean(self, dim):
        points = (
            unit_disk(200, seed=3) if dim == 2 else unit_ball(200, dim=3, seed=3)
        )
        for tree in (
            build_bisection_tree(points, 0, 4).tree,
            compact_tree(points, 0, 4),
            capped_star(points, 0, 4),
        ):
            assert check_tree(tree, d_max=4, root=0).ok

    def test_single_node_tree(self):
        tree = MulticastTree(
            points=np.zeros((1, 2)), parent=np.array([0]), root=0
        )
        report = check_tree(tree, d_max=2)
        assert report.ok
        assert report.stats["radius"] == 0.0


class TestBrokenTrees:
    @pytest.fixture()
    def valid(self):
        return build_polar_grid_tree(unit_disk(40, seed=4), 0, 6)

    def test_parent_out_of_range(self, valid):
        parent = valid.tree.parent.copy()
        parent[5] = 999
        report = check_tree(parent, points=valid.tree.points, root=0)
        assert codes(report) == {"PARENT_RANGE"}

    def test_cycle(self, valid):
        parent = valid.tree.parent.copy()
        parent[5], parent[7] = 7, 5
        report = check_tree(parent, points=valid.tree.points, root=0)
        assert "CYCLE" in codes(report)

    def test_second_root(self, valid):
        parent = valid.tree.parent.copy()
        parent[3] = 3
        report = check_tree(parent, points=valid.tree.points, root=0)
        assert "ROOT_LOOP" in codes(report)

    def test_degree_cap_scalar_and_per_node(self):
        points = unit_disk(20, seed=5)
        star = MulticastTree(
            points=points, parent=np.zeros(20, dtype=np.int64), root=0
        )
        assert "DEGREE_CAP" in codes(check_tree(star, d_max=3))
        budgets = np.full(20, 19)
        assert check_tree(star, d_max=budgets).ok
        budgets[0] = 5
        assert "DEGREE_CAP" in codes(check_tree(star, d_max=budgets))

    def test_stale_delay_cache_is_caught(self, valid):
        tree = valid.tree
        tree.root_delays()
        tree._root_delays = tree._root_delays * 1.5
        report = check_tree(tree)
        assert {"DELAY_MISMATCH", "RADIUS_MISMATCH"} <= codes(report)

    def test_points_mismatch(self, valid):
        other = valid.tree.points + 1.0
        report = check_tree(valid.tree, points=other)
        assert "POINTS_MISMATCH" in codes(report)

    def test_non_finite_coordinates(self, valid):
        points = valid.tree.points.copy()
        points[2, 0] = np.nan
        report = check_tree(valid.tree.parent, points=points, root=0)
        assert "NON_FINITE" in codes(report)

    def test_shape_mismatch_short_circuits(self, valid):
        report = check_tree(
            valid.tree.parent, points=valid.tree.points[:-1], root=0
        )
        assert codes(report) == {"SHAPE"}

    def test_raise_if_failed(self, valid):
        parent = valid.tree.parent.copy()
        parent[5], parent[7] = 7, 5
        report = check_tree(parent, points=valid.tree.points, root=0)
        with pytest.raises(TreeInvariantError, match="CYCLE"):
            report.raise_if_failed()
        assert check_tree(valid.tree).raise_if_failed().ok

    def test_report_round_trip(self, valid):
        report = check_build_result(valid)
        as_dict = report.to_dict()
        assert as_dict["ok"] is True
        assert as_dict["stats"]["n"] == 40
        assert "radius" in as_dict["stats"]
        assert "grid-representatives" in as_dict["checks"]


class TestGridInvariants:
    def test_missing_representative_flagged(self):
        result = build_polar_grid_tree(unit_disk(300, seed=6), 0, 6)
        result.representatives = result.representatives[:-1]
        report = check_build_result(result)
        assert "REP_MISSING" in codes(report)

    def test_duplicate_representative_flagged(self):
        result = build_polar_grid_tree(unit_disk(300, seed=7), 0, 6)
        reps = result.representatives.copy()
        reps[1] = reps[0]
        result.representatives = reps
        report = check_build_result(result)
        assert {"REP_DUPLICATE", "REP_CELL_CLASH"} & codes(report)

    def test_source_as_representative_flagged(self):
        result = build_polar_grid_tree(unit_disk(300, seed=8), 0, 6)
        reps = result.representatives.copy()
        reps[0] = result.tree.root
        result.representatives = reps
        report = check_build_result(result)
        assert "REP_SOURCE" in codes(report)

    def test_wrong_representative_violates_rule(self):
        result = build_polar_grid_tree(unit_disk(500, seed=9), 0, 6)
        tree = result.tree
        grid = result.grid
        receivers = np.flatnonzero(np.arange(tree.n) != tree.root)
        ring, cell = grid.assign_points(tree.points[receivers])
        gid = np.asarray(grid.global_id(ring, cell))
        reps = result.representatives.copy()
        gid_of = np.full(tree.n, -1, dtype=np.int64)
        gid_of[receivers] = gid
        # Replace one representative with a *different* member of the
        # same cell (there must be a multi-member cell at n=500).
        for i, rep in enumerate(reps):
            cellmates = receivers[gid == gid_of[rep]]
            others = cellmates[cellmates != rep]
            if others.size:
                reps[i] = others[0]
                break
        else:
            pytest.skip("no multi-member cell in this instance")
        result.representatives = reps
        report = check_build_result(result)
        assert "REP_RULE" in codes(report)

    def test_occupancy_violation_detected(self):
        # Receivers confined to one angular sector: with a forced deep
        # grid, whole sectors stay empty — property 3 fails while the
        # relaxed connected rule still holds.
        rng = np.random.default_rng(10)
        n = 400
        theta = rng.uniform(0.0, np.pi / 4, n)
        radius = np.sqrt(rng.uniform(0.0, 1.0, n))
        points = np.stack(
            [radius * np.cos(theta), radius * np.sin(theta)], axis=1
        )
        points[0] = 0.0
        result = build_polar_grid_tree(
            points, 0, 6, k=4, occupancy="connected"
        )
        report = check_build_result(result, occupancy="full")
        assert "OCCUPANCY" in codes(report)
        assert check_build_result(result, occupancy="connected").ok
        assert check_build_result(result, occupancy=None).ok
