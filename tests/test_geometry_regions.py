"""Unit tests for regions: membership, sampling, enclosing annulus."""

import numpy as np
import pytest

from repro.geometry.regions import (
    Annulus,
    Ball,
    ConvexPolygon,
    Disk,
    Rectangle,
    smallest_enclosing_annulus,
)


class TestBall:
    def test_disk_alias(self):
        disk = Disk(center=(1.0, 2.0), radius=3.0)
        assert disk.dim == 2
        assert disk.center == (1.0, 2.0)

    def test_contains(self):
        ball = Ball(dim=2, radius=1.0)
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.01, 0.0]])
        assert ball.contains(pts).tolist() == [True, True, False]

    def test_sample_inside(self, rng):
        ball = Ball(dim=3, center=(1, 1, 1), radius=2.0)
        pts = ball.sample(500, rng)
        assert pts.shape == (500, 3)
        assert np.all(ball.contains(pts))

    def test_sample_uniform_radially(self, rng):
        """Radius^d of uniform ball samples is uniform on [0, 1]."""
        ball = Ball(dim=2)
        pts = ball.sample(20_000, rng)
        u = np.sum(pts**2, axis=1)  # rho^2 ~ U[0,1] in 2-D
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.min() > 1700
        assert hist.max() < 2300

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError, match="radius"):
            Ball(dim=2, radius=0.0)

    def test_rejects_center_mismatch(self):
        with pytest.raises(ValueError, match="center"):
            Ball(dim=3, center=(0.0, 0.0))


class TestAnnulus:
    def test_contains_excludes_hole(self):
        ann = Annulus(dim=2, r_inner=0.5, r_outer=1.0)
        pts = np.array([[0.25, 0.0], [0.75, 0.0], [1.25, 0.0]])
        assert ann.contains(pts).tolist() == [False, True, False]

    def test_sample_inside(self, rng):
        ann = Annulus(dim=3, r_inner=0.4, r_outer=0.9)
        pts = ann.sample(400, rng)
        rho = np.linalg.norm(pts, axis=1)
        assert np.all(rho > 0.4)
        assert np.all(rho <= 0.9 + 1e-12)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Annulus(r_inner=1.0, r_outer=0.5)


class TestRectangle:
    def test_contains(self):
        box = Rectangle(lower=(0, 0), upper=(2, 1))
        pts = np.array([[1.0, 0.5], [3.0, 0.5], [1.0, -0.1]])
        assert box.contains(pts).tolist() == [True, False, False]

    def test_sample(self, rng):
        box = Rectangle(lower=(-1, 0, 5), upper=(1, 2, 6))
        pts = box.sample(300, rng)
        assert pts.shape == (300, 3)
        assert np.all(box.contains(pts))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError, match="lower < upper"):
            Rectangle(lower=(0, 0), upper=(0, 1))


class TestConvexPolygon:
    TRIANGLE = ((0.0, 0.0), (2.0, 0.0), (0.0, 2.0))

    def test_contains(self):
        tri = ConvexPolygon(vertices=self.TRIANGLE)
        pts = np.array([[0.5, 0.5], [1.5, 1.5], [-0.1, 0.5]])
        assert tri.contains(pts).tolist() == [True, False, False]

    def test_sample_inside(self, rng):
        tri = ConvexPolygon(vertices=self.TRIANGLE)
        pts = tri.sample(500, rng)
        assert np.all(tri.contains(pts))

    def test_sample_covers_both_triangle_halves(self, rng):
        square = ConvexPolygon(vertices=((0, 0), (1, 0), (1, 1), (0, 1)))
        pts = square.sample(4000, rng)
        # Uniformity across the fan triangulation diagonal.
        below = np.count_nonzero(pts[:, 1] < pts[:, 0])
        assert 1800 < below < 2200

    def test_rejects_concave(self):
        with pytest.raises(ValueError, match="convex"):
            ConvexPolygon(vertices=((0, 0), (2, 0), (1, 0.1), (0, 2)))

    def test_rejects_clockwise(self):
        with pytest.raises(ValueError, match="convex"):
            ConvexPolygon(vertices=((0, 0), (0, 2), (2, 0)))

    def test_rejects_too_few(self):
        with pytest.raises(ValueError, match="3 vertices"):
            ConvexPolygon(vertices=((0, 0), (1, 1)))


class TestSmallestEnclosingAnnulus:
    def test_basic(self):
        pts = np.array([[1.0, 0.0], [0.0, 3.0]])
        r_min, r_max = smallest_enclosing_annulus(pts, (0.0, 0.0))
        assert r_min == pytest.approx(1.0)
        assert r_max == pytest.approx(3.0)

    def test_point_on_center(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        r_min, _ = smallest_enclosing_annulus(pts, (0.0, 0.0))
        assert r_min == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            smallest_enclosing_annulus(np.zeros((0, 2)), (0.0, 0.0))

    def test_all_points_inside_result(self, rng):
        pts = rng.normal(size=(100, 2))
        center = rng.normal(size=2)
        r_min, r_max = smallest_enclosing_annulus(pts, center)
        rho = np.linalg.norm(pts - center, axis=1)
        assert np.all(rho >= r_min - 1e-12)
        assert np.all(rho <= r_max + 1e-12)


class TestRejectionSampling:
    def test_degenerate_region_raises(self, rng):
        """A region occupying ~0 of its box must fail loudly, not hang."""
        from repro.geometry.regions import Region

        class Sliver(Region):
            dim = 2

            def contains(self, points):
                return np.zeros(points.shape[0], dtype=bool)

        sliver = Sliver()
        with pytest.raises(RuntimeError, match="acceptance"):
            sliver._rejection_sample(
                10, rng, np.zeros(2), np.ones(2), acceptance_floor=1e-3
            )
