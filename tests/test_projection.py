"""Tests for PCA projection."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.geometry.projection import pca_project, project_tree
from repro.viz import tree_to_svg
from repro.workloads.generators import unit_ball


class TestPcaProject:
    def test_planar_cloud_is_recovered(self, rng):
        """Points on a tilted plane in R^3 project with ~100% variance."""
        basis = np.linalg.qr(rng.normal(size=(3, 2)))[0]
        coords2d = rng.normal(size=(200, 2))
        points = coords2d @ basis.T + 5.0
        projected, explained = pca_project(points, dim=2)
        assert explained.sum() > 0.999
        # Pairwise distances survive (projection onto the true plane).
        from repro.geometry.points import pairwise_distances

        assert np.allclose(
            pairwise_distances(projected),
            pairwise_distances(points),
            atol=1e-9,
        )

    def test_explained_variance_ordering(self, rng):
        points = rng.normal(size=(300, 4)) * np.array([5.0, 2.0, 1.0, 0.1])
        _p, explained = pca_project(points, dim=3)
        assert explained[0] > explained[1] > explained[2]

    def test_output_centred(self, rng):
        points = rng.normal(size=(50, 3)) + 100.0
        projected, _ = pca_project(points)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)

    def test_degenerate_cloud(self):
        points = np.ones((10, 3))
        projected, explained = pca_project(points)
        assert np.allclose(projected, 0.0)
        assert np.allclose(explained, 0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="project"):
            pca_project(rng.normal(size=(5, 2)), dim=3)
        with pytest.raises(ValueError, match="positive"):
            pca_project(rng.normal(size=(5, 2)), dim=0)


class TestProjectTree:
    def test_3d_tree_becomes_renderable(self):
        tree = build_polar_grid_tree(unit_ball(200, dim=3, seed=1), 0, 10).tree
        flat = project_tree(tree)
        assert flat.dim == 2
        assert flat.root == tree.root
        svg = tree_to_svg(flat)
        assert svg.count("<line") == tree.n - 1

    def test_structure_preserved(self):
        tree = build_polar_grid_tree(unit_ball(100, dim=4, seed=2), 0, 2).tree
        flat = project_tree(tree)
        assert np.array_equal(flat.parent, tree.parent)
        flat.validate(max_out_degree=2)
