"""Tests for shared-memory point blocks (repro.experiments.shm).

The contract: a published block is visible to process-pool workers as
the *identical* float64 array through a ~100-byte picklable descriptor
— no coordinate pickling per task — and ``execute_trial`` builds from
the mapped memory exactly as it would from the original array. Real
subprocesses are exercised via :class:`ProcessExecutor` (as in
test_parallel_engine.py), so the descriptor genuinely crosses the
pickle boundary.
"""

import dataclasses
import pickle

import numpy as np
import pytest

import repro.obs as obs
from repro.experiments.parallel import (
    ProcessExecutor,
    TrialTask,
    execute_trial,
)
from repro.experiments.shm import (
    SharedPoints,
    attach,
    detach_all,
    shared_points,
)
from repro.workloads.generators import unit_disk


@pytest.fixture(autouse=True)
def _clean_attachments():
    """Drop cached mappings after each test so segments really unlink."""
    yield
    detach_all()


class TestPublishAttach:
    def test_roundtrip_is_bit_identical(self):
        points = unit_disk(500, seed=1)
        with shared_points(points) as ref:
            view = attach(ref)
            assert view.dtype == np.float64
            assert np.array_equal(view, points)

    def test_attach_is_cached_per_process(self):
        with shared_points(unit_disk(50, seed=2)) as ref:
            first = attach(ref)
            second = attach(ref)
            assert first is second

    def test_ref_is_tiny_and_picklable(self):
        # 80 MB of coordinates -> a descriptor of a few hundred bytes.
        points = unit_disk(10_000, seed=3)
        with shared_points(points) as ref:
            blob = pickle.dumps(ref)
            assert len(blob) < 500
            assert len(blob) < points.nbytes // 100
            restored = pickle.loads(blob)
            assert restored == ref
            assert restored.nbytes == points.nbytes

    def test_task_with_ref_still_pickles_small(self):
        points = unit_disk(20_000, seed=4)
        with shared_points(points) as ref:
            task = TrialTask(points.shape[0], 6, 2, seed=0, points_ref=ref)
            assert len(pickle.dumps(task)) < 1000

    def test_close_is_idempotent(self):
        holder = SharedPoints(unit_disk(10, seed=5))
        holder.close()
        holder.close()  # second close must be a no-op

    def test_unlinked_segment_cannot_be_attached(self):
        with shared_points(unit_disk(10, seed=6)) as ref:
            pass
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_counters(self):
        obs.reset()
        obs.enable()
        try:
            points = unit_disk(30, seed=7)
            with shared_points(points) as ref:
                attach(ref)
                attach(ref)  # cached: must not double-count
            snap = obs.snapshot()
        finally:
            obs.reset()
        assert snap["engine.shm.published.total"]["value"] == 1
        assert snap["engine.shm.attached.total"]["value"] == 1


class TestTrialsFromSharedBlock:
    def test_execute_trial_matches_seed_regeneration(self):
        # Publishing the exact cloud the seed would generate must yield
        # the identical record (the build sees the same bits).
        n, seed = 300, 42
        points = unit_disk(n, seed=seed)
        plain = execute_trial(TrialTask(n, 6, 2, seed=seed))
        with shared_points(points) as ref:
            shared = execute_trial(
                TrialTask(n, 6, 2, seed=seed, points_ref=ref)
            )
        assert dataclasses.replace(plain, seconds=0.0) == dataclasses.replace(
            shared, seconds=0.0
        )

    def test_shape_mismatch_is_rejected(self):
        with shared_points(unit_disk(40, seed=8)) as ref:
            task = TrialTask(41, 6, 2, seed=0, points_ref=ref)
            with pytest.raises(ValueError, match="shape"):
                execute_trial(task)

    def test_process_workers_build_from_shared_block(self):
        # The core promise: workers in real subprocesses attach to the
        # published segment (the descriptor pickles, the coordinates do
        # not) and build the identical tree for every trial.
        n, seed = 250, 9
        points = unit_disk(n, seed=seed)
        expected = execute_trial(TrialTask(n, 4, 2, seed=seed))
        with shared_points(points) as ref:
            tasks = [
                TrialTask(n, 4, 2, seed=seed, points_ref=ref)
                for _ in range(3)
            ]
            with ProcessExecutor(max_workers=2) as ex:
                records = ex.map(tasks)
        assert len(records) == 3
        for record in records:
            assert dataclasses.replace(
                record, seconds=0.0
            ) == dataclasses.replace(expected, seconds=0.0)
