"""Unit + property tests for MulticastTree (pointer-doubling delays etc.)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import MulticastTree, TreeInvariantError


def chain_tree(n: int) -> MulticastTree:
    """0 -> 1 -> 2 -> ... along the x axis."""
    points = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    parent = np.arange(-1, n - 1)
    parent[0] = 0
    return MulticastTree(points=points, parent=parent, root=0)


def star_tree(n: int) -> MulticastTree:
    points = np.zeros((n, 2))
    points[1:, 0] = np.arange(1, n)
    parent = np.zeros(n, dtype=np.int64)
    return MulticastTree(points=points, parent=parent, root=0)


@st.composite
def random_tree(draw):
    """A random valid tree: node i attaches to a random j < i."""
    n = draw(st.integers(2, 60))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2))
    parent = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        parent[i] = rng.integers(0, i)
    return MulticastTree(points=points, parent=parent, root=0)


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="parent array"):
            MulticastTree(np.zeros((3, 2)), np.zeros(2, dtype=np.int64), 0)

    def test_root_out_of_range(self):
        with pytest.raises(ValueError, match="root"):
            MulticastTree(np.zeros((2, 2)), np.array([0, 0]), 5)

    def test_from_edges(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        tree = MulticastTree.from_edges(pts, [(0, 1), (1, 2)], root=0)
        assert tree.parent.tolist() == [0, 0, 1]

    def test_from_edges_double_parent(self):
        pts = np.zeros((3, 2))
        with pytest.raises(TreeInvariantError, match="two parents"):
            MulticastTree.from_edges(pts, [(0, 1), (2, 1)], root=0)

    def test_from_edges_missing_parent(self):
        pts = np.zeros((3, 2))
        with pytest.raises(TreeInvariantError, match="no parent"):
            MulticastTree.from_edges(pts, [(0, 1)], root=0)

    def test_from_edges_reports_every_offender_at_once(self):
        # One failed construction must name ALL defective nodes — both
        # double-parented and orphaned — not just the first symptom.
        pts = np.zeros((6, 2))
        edges = [(0, 1), (2, 1), (0, 2), (3, 2)]  # 1, 2 doubled; 3-5 orphans
        with pytest.raises(TreeInvariantError) as info:
            MulticastTree.from_edges(pts, edges, root=0)
        message = str(info.value)
        assert "[1, 2]" in message, message
        assert "[3, 4, 5]" in message, message
        assert "two parents" in message and "no parent" in message

    def test_edges_roundtrip(self):
        tree = chain_tree(5)
        rebuilt = MulticastTree.from_edges(tree.points, tree.edges(), 0)
        assert np.array_equal(rebuilt.parent, tree.parent)


class TestDegrees:
    def test_chain_degrees(self):
        tree = chain_tree(4)
        assert tree.out_degrees().tolist() == [1, 1, 1, 0]
        assert tree.max_out_degree() == 1

    def test_star_degrees(self):
        tree = star_tree(5)
        assert tree.out_degrees().tolist() == [4, 0, 0, 0, 0]
        assert tree.max_out_degree() == 4

    def test_single_node(self):
        tree = MulticastTree(np.zeros((1, 2)), np.array([0]), 0)
        assert tree.max_out_degree() == 0
        assert tree.radius() == 0.0


class TestDelays:
    def test_chain_delays(self):
        tree = chain_tree(5)
        assert np.allclose(tree.root_delays(), [0, 1, 2, 3, 4])
        assert tree.radius() == pytest.approx(4.0)

    def test_star_delays(self):
        tree = star_tree(4)
        assert np.allclose(tree.root_delays(), [0, 1, 2, 3])

    def test_depths_chain(self):
        assert chain_tree(4).depths().tolist() == [0, 1, 2, 3]

    def test_depths_star(self):
        assert star_tree(4).depths().tolist() == [0, 1, 1, 1]

    @given(random_tree())
    @settings(max_examples=40)
    def test_doubling_matches_oracle(self, tree):
        from tests.conftest import reference_root_delays

        expected = reference_root_delays(tree.points, tree.parent, tree.root)
        assert np.allclose(tree.root_delays(), expected, atol=1e-9)

    def test_delay_to_and_paths(self):
        tree = chain_tree(4)
        assert tree.delay_to(3) == pytest.approx(3.0)
        assert tree.path_to_root(3) == [3, 2, 1, 0]

    def test_deep_tree_does_not_recurse(self):
        tree = chain_tree(5000)
        assert tree.radius() == pytest.approx(4999.0)
        assert tree.depths().max() == 4999


class TestValidation:
    def test_valid_tree_passes(self):
        chain_tree(10).validate(max_out_degree=1)

    def test_cycle_detected(self):
        pts = np.zeros((3, 2))
        parent = np.array([0, 2, 1])  # 1 <-> 2 cycle
        tree = MulticastTree(pts, parent, 0)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_two_roots_detected(self):
        pts = np.zeros((3, 2))
        parent = np.array([0, 1, 0])  # node 1 is its own parent too
        tree = MulticastTree(pts, parent, 0)
        with pytest.raises(TreeInvariantError, match="self-loop"):
            tree.validate()

    def test_parent_out_of_range(self):
        pts = np.zeros((2, 2))
        tree = MulticastTree(pts, np.array([0, 7]), 0)
        with pytest.raises(TreeInvariantError, match="out of range"):
            tree.validate()

    def test_degree_bound_enforced(self):
        tree = star_tree(5)
        with pytest.raises(TreeInvariantError, match="out-degree"):
            tree.validate(max_out_degree=3)
        tree.validate(max_out_degree=4)

    def test_validate_returns_self(self):
        tree = chain_tree(3)
        assert tree.validate() is tree


class TestStructureQueries:
    def test_children_lists(self):
        tree = star_tree(4)
        kids = tree.children_lists()
        assert kids[0] == [1, 2, 3]
        assert kids[1] == []

    def test_subtree_nodes_chain(self):
        tree = chain_tree(5)
        assert tree.subtree_nodes(2).tolist() == [2, 3, 4]
        assert tree.subtree_nodes(0).tolist() == [0, 1, 2, 3, 4]

    def test_subtree_nodes_star_leaf(self):
        tree = star_tree(4)
        assert tree.subtree_nodes(2).tolist() == [2]

    @given(random_tree())
    @settings(max_examples=20)
    def test_subtree_partition(self, tree):
        """Children subtrees of the root partition everything but the root."""
        kids = tree.children_lists()[tree.root]
        union = set()
        for child in kids:
            nodes = set(tree.subtree_nodes(child).tolist())
            assert not (union & nodes)
            union |= nodes
        assert union == set(range(tree.n)) - {tree.root}


class TestDiagnostics:
    def test_stretch_of_chain(self):
        tree = chain_tree(3)
        assert np.allclose(tree.stretch(), [1.0, 1.0, 1.0])

    def test_stretch_of_detour(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        tree = MulticastTree(pts, np.array([0, 0, 1]), 0)
        expected = (np.sqrt(2) * 2) / 2.0
        assert tree.stretch()[2] == pytest.approx(expected)

    def test_stretch_coincident_receiver(self):
        pts = np.zeros((2, 2))
        tree = MulticastTree(pts, np.array([0, 0]), 0)
        assert tree.stretch()[1] == 1.0

    def test_summary_keys(self):
        summary = chain_tree(4).summary()
        assert summary["nodes"] == 4
        assert summary["radius"] == pytest.approx(3.0)
        assert summary["max_out_degree"] == 1
        assert summary["max_depth"] == 3
