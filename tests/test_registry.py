"""The builder registry and the repro.build facade: the one front door."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.analysis.oracle import check_tree
from repro.core.builder import BuildResult
from repro.core.registry import (
    BuilderParamError,
    BuilderSpec,
    UnknownBuilderError,
    build,
    builder_names,
    builder_specs,
    get_builder,
    register_builder,
    unregister_builder,
)
from repro.workloads.generators import unit_disk

POINTS = unit_disk(120, seed=3)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = builder_names()
        assert {
            "polar-grid",
            "bisection",
            "quadtree",
            "min-diameter",
            "heterogeneous",
            "compact-tree",
            "bandwidth-latency",
            "capped-star",
            "random",
        } <= set(names)
        assert list(names) == sorted(names)

    def test_specs_carry_contract_metadata(self):
        for spec in builder_specs():
            assert isinstance(spec, BuilderSpec)
            assert spec.name and callable(spec.fn)
            assert "max_out_degree" in spec.params or "..." in spec.params

    def test_get_builder_passes_spec_through(self):
        spec = get_builder("polar-grid")
        assert get_builder(spec) is spec

    def test_registration_roundtrip(self):
        @register_builder("test-echo", summary="test-only")
        def echo(points, source=0, max_out_degree=6):
            return build(points, source, "capped-star",
                         max_out_degree=max_out_degree)

        try:
            assert "test-echo" in builder_names()
            result = build(POINTS, 0, "test-echo", max_out_degree=4)
            assert result.builder == "test-echo"
        finally:
            removed = unregister_builder("test-echo")
        assert removed is not None
        assert "test-echo" not in builder_names()


class TestFacade:
    @pytest.mark.parametrize("name", sorted(
        {"polar-grid", "bisection", "quadtree", "min-diameter",
         "heterogeneous", "compact-tree", "bandwidth-latency",
         "capped-star", "random"}
    ))
    def test_every_builtin_roundtrips_through_the_facade(self, name):
        # The uniform contract: every registered builder accepts the
        # normalized vocabulary, returns a stamped BuildResult, and its
        # tree passes the structural oracle.
        params = {"max_out_degree": 4}
        if name in ("bandwidth-latency", "random"):
            params["seed"] = 0
        result = build(POINTS, 0, name, **params)
        assert isinstance(result, BuildResult)
        assert result.builder == name
        assert result.tree.n == POINTS.shape[0]
        # min-diameter picks its own root; everyone else keeps source 0.
        if name != "min-diameter":
            assert result.tree.root == 0
        report = check_tree(result.tree, d_max=4)
        assert report.ok, report.render()

    def test_unknown_builder_error_is_structured(self):
        with pytest.raises(UnknownBuilderError) as info:
            build(POINTS, 0, "no-such-builder")
        err = info.value
        assert err.name == "no-such-builder"
        assert "polar-grid" in err.known
        assert isinstance(err, ValueError)
        assert "polar-grid" in str(err)

    def test_param_error_is_structured(self):
        with pytest.raises(BuilderParamError) as info:
            build(POINTS, 0, "capped-star", bogus_knob=3)
        err = info.value
        assert err.builder == "capped-star"
        assert "bogus_knob" in err.rejected
        assert "max_out_degree" in err.accepted
        assert isinstance(err, TypeError)

    def test_min_diameter_exposes_diameter_extra(self):
        result = build(POINTS, 0, "min-diameter", max_out_degree=6)
        assert result.extras["diameter"] > 0
        assert result.builder == "min-diameter"

    def test_wrapped_builders_measure_build_time(self):
        result = build(POINTS, 0, "compact-tree", max_out_degree=6)
        assert result.build_seconds > 0

    def test_counters_track_builds(self):
        import repro.obs as obs

        obs.reset()
        obs.enable()
        try:
            build(POINTS, 0, "capped-star", max_out_degree=5)
            snap = obs.snapshot()
        finally:
            obs.reset()
        assert snap["registry.build.total"]["value"] == 1.0
        assert snap["registry.build.capped-star.total"]["value"] == 1.0


class TestDeprecatedShims:
    def test_old_entry_points_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="repro.build"):
            result = repro.build_polar_grid_tree(POINTS, 0, 6)
        assert result.builder == "polar-grid"
        with pytest.warns(DeprecationWarning, match="deprecated"):
            result = repro.build_bisection_tree(POINTS, 0, 4)
        assert result.builder == "bisection"

    def test_min_diameter_shim_keeps_the_tuple_contract(self):
        with pytest.warns(DeprecationWarning):
            result, diameter = repro.build_min_diameter_tree(
                POINTS, max_out_degree=6
            )
        assert diameter == result.extras["diameter"]

    def test_importing_repro_is_warning_free(self):
        # Shims warn at CALL time only; merely importing (or touching
        # the canonical API) must stay silent under -W error.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build(POINTS, 0, "polar-grid", max_out_degree=6)
            np.testing.assert_allclose(POINTS, POINTS)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_an_api
