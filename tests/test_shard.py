"""The shard layer: hash ring, router failover, fleet coalescing."""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.service import (
    BackgroundServer,
    HashRing,
    NoShardAvailable,
    ServiceClient,
    ServiceClientError,
    ServiceUnavailable,
    ShardFleet,
    ShardRouter,
)
from repro.service.shard import fleet_key_for_shard
from repro.testing import faults

PARAMS = {"max_out_degree": 6}


def sample_keys(count: int) -> list[str]:
    """Deterministic stand-ins for canonical cache keys (SHA-256 hex)."""
    return [
        hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(count)
    ]


class TestHashRing:
    def test_preference_is_deterministic_across_instances(self):
        shards = ["shard-0", "shard-1", "shard-2", "shard-3"]
        a = HashRing(shards, vnodes=48, replication=3)
        b = HashRing(list(reversed(shards)), vnodes=48, replication=3)
        for key in sample_keys(50):
            assert a.preference(key) == b.preference(key)

    def test_preference_lists_are_distinct_and_sized(self):
        ring = HashRing(["a", "b", "c"], vnodes=32, replication=2)
        for key in sample_keys(50):
            order = ring.preference(key)
            assert len(order) == 2
            assert len(set(order)) == 2
            assert order[0] == ring.primary(key)

    def test_replication_clamps_to_shard_count(self):
        ring = HashRing(["solo"], vnodes=16, replication=3)
        assert ring.preference(sample_keys(1)[0]) == ("solo",)

    def test_balance_within_a_factor_of_the_mean(self):
        ring = HashRing(
            [f"shard-{i}" for i in range(4)], vnodes=64, replication=2
        )
        load = ring.load(sample_keys(4000))
        mean = 4000 / 4
        assert max(load.values()) < 2 * mean
        assert min(load.values()) > mean / 3

    def test_join_moves_only_keys_claimed_by_the_newcomer(self):
        keys = sample_keys(2000)
        ring = HashRing([f"shard-{i}" for i in range(4)], vnodes=64)
        before = {key: ring.primary(key) for key in keys}
        ring.add("shard-4")
        moved = 0
        for key in keys:
            after = ring.primary(key)
            if after != before[key]:
                moved += 1
                # consistency: keys only ever move TO the new shard,
                # never get reshuffled between survivors
                assert after == "shard-4"
        # expected fraction 1/5; allow 2x slack for vnode variance
        assert moved <= 2 * len(keys) / 5
        assert moved > 0

    def test_leave_moves_only_the_departed_shards_keys(self):
        keys = sample_keys(2000)
        ring = HashRing([f"shard-{i}" for i in range(4)], vnodes=64)
        before = {key: ring.primary(key) for key in keys}
        ring.remove("shard-2")
        for key in keys:
            if before[key] != "shard-2":
                assert ring.primary(key) == before[key]
            else:
                assert ring.primary(key) != "shard-2"

    def test_join_then_leave_restores_the_original_map(self):
        keys = sample_keys(500)
        ring = HashRing(["a", "b", "c"], vnodes=32)
        before = {key: ring.preference(key) for key in keys}
        ring.add("d")
        ring.remove("d")
        assert {key: ring.preference(key) for key in keys} == before

    def test_structured_errors(self):
        ring = HashRing(["a"], vnodes=8)
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(KeyError):
            ring.remove("zzz")
        with pytest.raises(RuntimeError):
            HashRing([], vnodes=8).preference(sample_keys(1)[0])
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing(replication=0)


class TestServiceUnavailable:
    def test_connect_to_dead_port_is_structured(self):
        with BackgroundServer() as server:
            host, port = server.host, server.port
        # server is down now; the port is dead
        with pytest.raises(ServiceUnavailable) as excinfo:
            ServiceClient(host=host, port=port, timeout=5)
        assert excinfo.value.host == host
        assert excinfo.value.port == port
        assert isinstance(excinfo.value, ConnectionError)

    def test_mid_request_death_is_structured(self):
        server = BackgroundServer().start()
        client = ServiceClient(host=server.host, port=server.port)
        server.stop()
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.ping()
        assert excinfo.value.port == server.port
        client.close()


class TestShardRouter:
    def test_routes_land_on_the_rings_primary(self):
        with ShardFleet(shards=3) as fleet:
            with fleet.router() as router:
                assert isinstance(router, ShardRouter)
                spec = fleet_key_for_shard(router.ring, "shard-1", n=200)
                reply = router.build(workload=spec, params=PARAMS)
                assert reply["shard"] == "shard-1"
                assert "failovers" not in reply

    def test_repeat_requests_hit_the_same_shards_cache(self):
        with ShardFleet(shards=3) as fleet:
            with fleet.router() as router:
                wl = {"kind": "unit-disk", "n": 300, "seed": 1}
                first = router.build(workload=wl, params=PARAMS)
                second = router.build(workload=wl, params=PARAMS)
                assert second["shard"] == first["shard"]
                assert second["cached"]
                stats = router.stats()
                assert stats["shards"][first["shard"]]["hits"] == 1
                assert stats["shards"][first["shard"]]["misses"] == 1

    def test_failover_to_replica_in_preference_order(self):
        with ShardFleet(shards=3, replication=2) as fleet:
            with fleet.router() as router:
                wl = {"kind": "unit-disk", "n": 300, "seed": 2}
                key = router.routing_key(workload=wl, params=PARAMS)
                primary, replica = router.ring.preference(key)
                fleet.kill(primary)
                reply = router.build(workload=wl, params=PARAMS)
                assert reply["shard"] == replica
                assert reply["failovers"] == 1
                assert router.stats()["failovers"] >= 1

    def test_all_replicas_dead_raises_no_shard_available(self):
        with ShardFleet(shards=2, replication=2) as fleet:
            with fleet.router() as router:
                wl = {"kind": "unit-disk", "n": 200, "seed": 3}
                for shard_id in fleet.shard_ids:
                    fleet.kill(shard_id)
                with pytest.raises(NoShardAvailable) as excinfo:
                    router.build(workload=wl, params=PARAMS)
                assert len(excinfo.value.attempted) == 2
                assert isinstance(
                    excinfo.value.__cause__, ServiceUnavailable
                )

    def test_protocol_errors_do_not_fail_over(self):
        with ShardFleet(shards=2) as fleet:
            with fleet.router() as router:
                with pytest.raises(ServiceClientError) as excinfo:
                    router.build(
                        workload={"kind": "unit-disk", "n": 200, "seed": 4},
                        builder="no-such-builder",
                    )
                assert excinfo.value.error_type == "UnknownBuilderError"
                assert router.stats()["failovers"] == 0

    def test_rebalance_counts_membership_changes(self):
        with ShardFleet(shards=2) as fleet:
            with fleet.router() as router:
                addresses = fleet.addresses()
                router.remove_shard("shard-1")
                assert router.ring.shards == ("shard-0",)
                host, port = addresses["shard-1"]
                router.add_shard("shard-1", host, port)
                assert router.stats()["rebalances"] == 2

    def test_raw_points_and_workload_share_one_routing_key(self):
        from repro.service.core import WorkloadSpec

        spec = WorkloadSpec(kind="unit-disk", n=150, seed=9)
        with ShardFleet(shards=3) as fleet:
            with fleet.router() as router:
                via_spec = router.routing_key(workload=spec, params=PARAMS)
                via_points = router.routing_key(
                    points=spec.materialize(), params=PARAMS
                )
                assert via_spec == via_points


class TestFleetCoalescing:
    def test_hot_key_costs_one_build_fleet_wide(self):
        clients = 5
        with ShardFleet(shards=3, max_workers=clients) as fleet:
            barrier = threading.Barrier(clients)
            replies: list[dict] = []
            errors: list[BaseException] = []
            lock = threading.Lock()

            def fire():
                try:
                    with fleet.router() as router:
                        barrier.wait(timeout=30)
                        reply = router.build(
                            workload={"kind": "unit-disk", "n": 800, "seed": 6},
                            params=PARAMS,
                        )
                        with lock:
                            replies.append(reply)
                except BaseException as exc:  # noqa: BLE001 - collected
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            assert not errors
            assert len(replies) == clients
            assert fleet.total_builds() == 1
            assert len({r["shard"] for r in replies}) == 1
            absorbed = sum(
                1 for r in replies if r["cached"] or r["coalesced"]
            )
            assert absorbed == clients - 1

    def test_distinct_keys_spread_and_build_once_each(self):
        with ShardFleet(shards=3) as fleet:
            with fleet.router() as router:
                shards_hit = set()
                for seed in range(6):
                    reply = router.build(
                        workload={"kind": "unit-disk", "n": 300, "seed": seed},
                        params=PARAMS,
                    )
                    shards_hit.add(reply["shard"])
                assert fleet.total_builds() == 6
                assert len(shards_hit) > 1  # the key space actually spreads
                per_shard = fleet.fleet_stats()
                assert (
                    sum(s["builds"] for s in per_shard.values()) == 6
                )


class TestFleetHarness:
    def test_kill_is_idempotent_and_observable(self):
        with ShardFleet(shards=2) as fleet:
            assert all(fleet.alive().values())
            fleet.kill("shard-0")
            fleet.kill("shard-0")
            assert fleet.alive() == {"shard-0": False, "shard-1": True}
            with pytest.raises(KeyError):
                fleet.kill("shard-9")

    def test_fault_plan_vocabulary_rejects_worker_level_kinds(self):
        with ShardFleet(shards=1) as fleet:
            with pytest.raises(ValueError):
                fleet.inject(faults.FaultSpec(kind="error", trial=0))
            with pytest.raises(ValueError):
                fleet.inject(faults.FaultSpec(kind="crash"))  # no index

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardFleet(shards=0)
        with pytest.raises(ValueError):
            ShardFleet(mode="fiber")


@pytest.mark.slow
class TestProcessFleetIntegration:
    """Real subprocess shards: the SIGKILL drill the CI smoke runs."""

    def test_kill_one_shard_via_fault_plan_with_zero_client_failures(self):
        with ShardFleet(shards=3, mode="process") as fleet:
            with fleet.router() as router:
                wl = {"kind": "unit-disk", "n": 500, "seed": 11}
                first = router.build(workload=wl, params=PARAMS)
                assert fleet.total_builds() == 1
                primary_index = int(first["shard"].rsplit("-", 1)[1])
                fleet.inject(
                    faults.FaultSpec(kind="crash", trial=primary_index),
                    faults.FaultSpec(kind="sleep", seconds=0.1),
                )
                assert not fleet.alive()[first["shard"]]
                # every post-kill request must succeed via a replica
                for _ in range(3):
                    reply = router.build(workload=wl, params=PARAMS)
                    assert reply["shard"] != first["shard"]
                    assert reply["failovers"] == 1
