"""Tests for the extension studies (degree sweep, regions, showdown)."""

import pytest

from repro.experiments.extensions import (
    ALGORITHMS,
    REGION_WORKLOADS,
    algorithm_showdown,
    degree_sweep,
    format_rows,
    region_study,
)


class TestDegreeSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return degree_sweep(n=2_000, degrees=(2, 4, 6, 12), trials=2, seed=0)

    def test_row_shape(self, rows):
        assert len(rows) == 4
        assert {"degree", "construction", "delay", "max_depth"} <= set(rows[0])

    def test_construction_switch_at_six(self, rows):
        by_degree = {r["degree"]: r for r in rows}
        assert by_degree[2]["construction"] == "binary"
        assert by_degree[4]["construction"] == "binary"
        assert by_degree[6]["construction"] == "full"

    def test_binary_budgets_identical(self, rows):
        """Budgets 2 and 4 both run the binary construction, so their
        delays are identical — the sweep's most informative fact."""
        by_degree = {r["degree"]: r for r in rows}
        assert by_degree[2]["delay"] == pytest.approx(by_degree[4]["delay"])

    def test_full_beats_binary(self, rows):
        by_degree = {r["degree"]: r for r in rows}
        assert by_degree[6]["delay"] < by_degree[2]["delay"]

    def test_extra_budget_beyond_six_changes_nothing(self, rows):
        by_degree = {r["degree"]: r for r in rows}
        assert by_degree[12]["delay"] == pytest.approx(by_degree[6]["delay"])


class TestRegionStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return region_study(n=3_000, trials=2, seed=1)

    def test_covers_all_workloads(self, rows):
        assert {r["workload"] for r in rows} == set(REGION_WORKLOADS)

    def test_convex_regions_near_bound(self, rows):
        for row in rows:
            if "non-convex" in row["workload"]:
                continue
            assert row["delay_over_bound"] < 1.45, row

    def test_nonconvex_annulus_is_the_outlier(self, rows):
        annulus = next(r for r in rows if "non-convex" in r["workload"])
        others = [
            r["delay_over_bound"] for r in rows if "non-convex" not in r["workload"]
        ]
        assert annulus["delay_over_bound"] > max(others)


class TestShowdown:
    @pytest.fixture(scope="class")
    def rows(self):
        return algorithm_showdown(n=1_500, seed=2)

    def test_covers_all_algorithms(self, rows):
        assert {r["algorithm"] for r in rows} == set(ALGORITHMS)

    def test_random_is_worst(self, rows):
        by_name = {r["algorithm"]: r for r in rows}
        worst = max(rows, key=lambda r: r["radius"])
        assert worst["algorithm"] == "random deg6"
        assert by_name["polar-grid deg6"]["radius"] < worst["radius"] / 2

    def test_vs_bound_at_least_one(self, rows):
        for row in rows:
            assert row["vs_bound"] >= 1.0 - 1e-9

    def test_timings_recorded(self, rows):
        assert all(row["seconds"] >= 0.0 for row in rows)


class TestFormatting:
    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        assert "a" in text and "b" in text
        assert "2.500" in text

    def test_empty(self):
        assert format_rows([]) == "(no rows)"
