"""Metamorphic invariance of the builders' radii.

Isometries and uniform scalings preserve pairwise distances (up to the
scale factor), so wherever a construction is equivariant under the
transform the built radius must be reproduced exactly. The equivalence
table lives in :data:`repro.testing.differential.METAMORPHIC_TRANSFORMS`
(and docs/TESTING.md); this suite pins it empirically across dimensions
2-3, degrees 2/6/10 and both tree builders — and checks that even the
deliberately frame- or order-dependent combinations still produce
oracle-clean trees that respect the universal lower bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.oracle import check_tree
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.testing.differential import METAMORPHIC_TRANSFORMS
from repro.workloads.generators import unit_ball, unit_disk

RTOL = 1e-7

BUILDERS = {
    "polar-grid": build_polar_grid_tree,
    "bisection": build_bisection_tree,
}


def instance(dim: int, seed: int) -> np.ndarray:
    if dim == 2:
        return unit_disk(160, seed=seed)
    return unit_ball(160, dim=dim, seed=seed)


def lower_bound(points: np.ndarray, source: int) -> float:
    return float(np.sqrt(((points - points[source]) ** 2).sum(axis=1)).max())


@pytest.mark.parametrize("transform_name", sorted(METAMORPHIC_TRANSFORMS))
@pytest.mark.parametrize("builder_name", sorted(BUILDERS))
@pytest.mark.parametrize("degree", [2, 6, 10])
@pytest.mark.parametrize("dim", [2, 3])
def test_radius_equivariance(dim, degree, builder_name, transform_name):
    transform, grid_eq, bisect_eq = METAMORPHIC_TRANSFORMS[transform_name]
    equal = (grid_eq if builder_name == "polar-grid" else bisect_eq)(
        dim, degree
    )
    build = BUILDERS[builder_name]

    points = instance(dim, seed=31 * dim + degree)
    base = build(points, 0, degree)
    rng = np.random.default_rng(100 + degree)
    t_points, t_source, factor = transform(points, 0, rng)
    variant = build(t_points, t_source, degree)

    # Unconditional: the transformed build is still a valid bounded tree
    # no worse than the farthest transformed receiver.
    report = check_tree(variant.tree, d_max=degree, root=t_source)
    assert report.ok, report.render()
    assert variant.tree.radius() >= factor * lower_bound(points, 0) - 1e-9

    if equal:
        assert variant.tree.radius() == pytest.approx(
            factor * base.tree.radius(), rel=RTOL
        ), (
            f"{builder_name} under {transform_name} should be an exact "
            f"symmetry at dim={dim}, d_max={degree}"
        )


def test_scale_factor_is_exactly_linear():
    # Radius under pure scaling must scale by the same factor for every
    # builder — a direct check that no absolute length sneaks into the
    # constructions.
    points = unit_disk(120, seed=41)
    for build in BUILDERS.values():
        base = build(points, 0, 6).tree.radius()
        for factor in (0.125, 8.0):  # exact binary floats: no rounding
            scaled = build(points * factor, 0, 6).tree.radius()
            assert scaled == pytest.approx(factor * base, rel=1e-12)


def test_translation_composes_with_permutation():
    # Two exact symmetries applied together must still be a symmetry.
    points = unit_ball(140, dim=3, seed=42)
    rng = np.random.default_rng(7)
    perm = rng.permutation(points.shape[0])
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    shifted = points[perm] + rng.normal(scale=3.0, size=3)
    base = build_polar_grid_tree(points, 0, 10).tree.radius()
    moved = build_polar_grid_tree(
        shifted, int(inverse[0]), 10
    ).tree.radius()
    assert moved == pytest.approx(base, rel=RTOL)
