"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import (
    as_points,
    bounding_box,
    distances_from,
    pairwise_distances,
    validate_points,
)


class TestAsPoints:
    def test_accepts_lists(self):
        pts = as_points([[0.0, 1.0], [2.0, 3.0]])
        assert pts.shape == (2, 2)
        assert pts.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="shape"):
            as_points([1.0, 2.0])

    def test_rejects_3d_array(self):
        with pytest.raises(ValueError, match="shape"):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_points([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_points([[np.inf, 0.0]])

    def test_dim_check_passes(self):
        as_points([[1.0, 2.0, 3.0]], dim=3)

    def test_dim_check_fails(self):
        with pytest.raises(ValueError, match="3-dimensional"):
            as_points([[1.0, 2.0, 3.0]], dim=2)

    def test_zero_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            as_points(np.zeros((3, 0)))

    def test_empty_point_set_allowed(self):
        pts = as_points(np.zeros((0, 2)))
        assert pts.shape == (0, 2)

    def test_validate_returns_same_object(self):
        arr = np.zeros((2, 2))
        assert validate_points(arr) is arr


class TestDistances:
    def test_distances_from_origin(self):
        pts = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 0.0]])
        d = distances_from(pts, (0.0, 0.0))
        assert np.allclose(d, [5.0, 0.0, 1.0])

    def test_distances_from_shifted_origin(self):
        pts = np.array([[1.0, 1.0]])
        assert np.isclose(distances_from(pts, (1.0, 0.0))[0], 1.0)

    def test_origin_shape_mismatch(self):
        with pytest.raises(ValueError, match="origin"):
            distances_from(np.zeros((2, 2)), (0.0, 0.0, 0.0))

    def test_pairwise_symmetry(self, rng):
        pts = rng.normal(size=(10, 3))
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_pairwise_matches_manual(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pts)
        assert np.isclose(d[0, 1], 5.0)

    def test_pairwise_triangle_inequality(self, rng):
        pts = rng.normal(size=(8, 2))
        d = pairwise_distances(pts)
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestBoundingBox:
    def test_basic(self):
        lo, hi = bounding_box(np.array([[0.0, 5.0], [2.0, -1.0]]))
        assert np.allclose(lo, [0.0, -1.0])
        assert np.allclose(hi, [2.0, 5.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            bounding_box(np.zeros((0, 2)))
