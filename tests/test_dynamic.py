"""Tests for DynamicOverlay — incremental joins/leaves with rebuilds."""

import numpy as np
import pytest

from repro.overlay.dynamic import DynamicOverlay


def grow(overlay: DynamicOverlay, count: int, seed=0, scale=0.5):
    rng = np.random.default_rng(seed)
    for i in range(count):
        overlay.join(f"m{seed}-{i}", rng.normal(size=overlay.dim) * scale)


class TestConstruction:
    def test_requires_vector_source(self):
        with pytest.raises(ValueError, match="vector"):
            DynamicOverlay(0.0)

    def test_requires_degree_2(self):
        with pytest.raises(ValueError, match="at least 2"):
            DynamicOverlay((0.0, 0.0), max_out_degree=1)

    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            DynamicOverlay((0.0, 0.0), rebuild_threshold=0.0)

    def test_starts_with_source_only(self):
        ov = DynamicOverlay((0.0, 0.0))
        assert ov.n == 1
        assert ov.members() == ["__source__"]
        assert ov.radius() == 0.0


class TestJoins:
    def test_join_returns_parent_name(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        parent = ov.join("a", (1.0, 0.0))
        assert parent == "__source__"
        assert ov.n == 2

    def test_duplicate_join_rejected(self):
        ov = DynamicOverlay((0.0, 0.0))
        ov.join("a", (1.0, 0.0))
        with pytest.raises(ValueError, match="already"):
            ov.join("a", (2.0, 0.0))

    def test_wrong_dim_rejected(self):
        ov = DynamicOverlay((0.0, 0.0))
        with pytest.raises(ValueError, match="shape"):
            ov.join("a", (1.0, 0.0, 0.0))

    def test_degree_respected_without_rebuilds(self):
        ov = DynamicOverlay((0.0, 0.0), max_out_degree=2, rebuild_threshold=None)
        grow(ov, 100, seed=1)
        tree = ov.tree().validate(max_out_degree=2)
        assert tree.n == 101

    def test_greedy_attaches_to_argmin_parent(self):
        """With the source at capacity, the newcomer picks exactly the
        open member minimising delay(parent) + dist(parent, newcomer)."""
        rng = np.random.default_rng(11)
        ov = DynamicOverlay((0.0, 0.0), max_out_degree=2, rebuild_threshold=None)
        grow(ov, 25, seed=11)
        newcomer = rng.normal(size=2)

        tree = ov.tree()
        delays = tree.root_delays()
        degrees = tree.out_degrees()
        candidates = [i for i in range(ov.n) if degrees[i] < 2]
        best = min(
            candidates,
            key=lambda i: delays[i]
            + float(np.linalg.norm(tree.points[i] - newcomer)),
        )
        expected_parent = ov.members()[best]

        assert ov.join("probe", newcomer) == expected_parent

    def test_cached_delays_match_tree(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        grow(ov, 60, seed=2)
        assert ov.radius() == pytest.approx(ov.tree().radius())


class TestLeaves:
    def test_leave_removes_member(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        grow(ov, 30, seed=3)
        ov.leave("m3-7")
        assert ov.n == 31 - 1
        assert "m3-7" not in ov.members()
        ov.tree().validate(max_out_degree=6)

    def test_source_cannot_leave(self):
        ov = DynamicOverlay((0.0, 0.0))
        with pytest.raises(ValueError, match="source"):
            ov.leave("__source__")

    def test_unknown_member(self):
        ov = DynamicOverlay((0.0, 0.0))
        with pytest.raises(ValueError, match="unknown"):
            ov.leave("ghost")

    def test_leave_keeps_delays_consistent(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        grow(ov, 50, seed=4)
        ov.leave("m4-0")
        ov.leave("m4-20")
        assert ov.radius() == pytest.approx(ov.tree().radius())


class TestRebuilds:
    def test_threshold_triggers_rebuild(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=0.5)
        grow(ov, 50, seed=5)
        assert ov.rebuild_count >= 1

    def test_no_rebuild_when_disabled(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        grow(ov, 50, seed=6)
        assert ov.rebuild_count == 0

    def test_rebuild_resets_quality(self):
        ov = DynamicOverlay((0.0, 0.0), max_out_degree=6, rebuild_threshold=None)
        grow(ov, 400, seed=7)
        drifted = ov.quality_gap()
        ov.rebuild()
        assert ov.quality_gap() == pytest.approx(1.0)
        assert ov.rebuild_count == 1
        assert drifted >= 0.8  # sanity: the gap metric is a ratio

    def test_manual_rebuild_preserves_membership(self):
        ov = DynamicOverlay((0.0, 0.0), rebuild_threshold=None)
        grow(ov, 40, seed=8)
        names = set(ov.members())
        ov.rebuild()
        assert set(ov.members()) == names
        ov.tree().validate(max_out_degree=6)


class TestChurnSoak:
    def test_long_random_churn_stays_valid(self):
        """The closest thing to a live deployment: 500 mixed events."""
        rng = np.random.default_rng(9)
        ov = DynamicOverlay((0.0, 0.0), max_out_degree=3, rebuild_threshold=0.3)
        alive = []
        counter = 0
        for _ in range(500):
            if not alive or rng.random() < 0.6:
                name = f"x{counter}"
                counter += 1
                ov.join(name, rng.normal(size=2) * 0.4)
                alive.append(name)
            else:
                victim = alive.pop(int(rng.integers(0, len(alive))))
                ov.leave(victim)
        tree = ov.tree()
        # Joins respect the budget; repairs may also use it fully.
        tree.validate(max_out_degree=3)
        assert tree.n == len(alive) + 1
        assert ov.rebuild_count > 0
