"""Tests for the theorem-verification module."""

import numpy as np

from repro.analysis.verify import (
    CheckResult,
    VerificationReport,
    check_equation5,
    check_equation7,
    check_lemma1,
    check_lemma2,
    check_theorem1,
    check_theorem2,
    run_all_checks,
)


class TestReportPlumbing:
    def test_all_passed_logic(self):
        report = VerificationReport(
            results=[
                CheckResult("a", True, ""),
                CheckResult("b", True, ""),
            ]
        )
        assert report.all_passed
        report.results.append(CheckResult("c", False, "boom"))
        assert not report.all_passed

    def test_render_contains_statuses(self):
        report = VerificationReport(
            results=[
                CheckResult("good claim", True, "ok"),
                CheckResult("bad claim", False, "nope"),
            ]
        )
        text = report.render()
        assert "[PASS] good claim" in text
        assert "[FAIL] bad claim" in text
        assert "FAILED" in text

    def test_render_all_green(self):
        report = VerificationReport(results=[CheckResult("x", True, "")])
        assert "all claims verified" in report.render()


class TestIndividualChecks:
    def test_lemma1_passes(self):
        rng = np.random.default_rng(1)
        result = check_lemma1(rng, fast=True)
        assert result.passed, result.detail

    def test_lemma2_passes(self):
        assert check_lemma2().passed

    def test_theorem1_passes(self):
        rng = np.random.default_rng(2)
        result = check_theorem1(rng, fast=True)
        assert result.passed, result.detail

    def test_equation5_passes(self):
        rng = np.random.default_rng(3)
        result = check_equation5(rng, fast=True)
        assert result.passed, result.detail

    def test_equation7_passes(self):
        rng = np.random.default_rng(4)
        result = check_equation7(rng, fast=True)
        assert result.passed, result.detail

    def test_theorem2_passes(self):
        rng = np.random.default_rng(5)
        result = check_theorem2(rng, fast=True)
        assert result.passed, result.detail


class TestRunAll:
    def test_full_fast_report_green(self):
        report = run_all_checks(seed=7, fast=True)
        assert report.all_passed, report.render()
        assert len(report.results) == 8

    def test_reproducible(self):
        a = run_all_checks(seed=8, fast=True)
        b = run_all_checks(seed=8, fast=True)
        assert [r.detail for r in a.results] == [r.detail for r in b.results]
