"""Tests for the exhaustive optimal solver (the approximation oracle)."""

import itertools

import numpy as np
import pytest

from repro.baselines.compact_tree import compact_tree
from repro.baselines.exact import (
    MAX_EXACT_NODES,
    optimal_radius,
    optimal_radius_tree,
)


class TestKnownOptima:
    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert optimal_radius(pts, 0, 1) == pytest.approx(5.0)

    def test_line_with_degree1_is_sorted_chain(self):
        pts = np.zeros((5, 2))
        pts[:, 0] = [0.0, 4.0, 1.0, 3.0, 2.0]
        assert optimal_radius(pts, 0, 1) == pytest.approx(4.0)

    def test_star_optimal_with_big_degree(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        # Degree 3 allows the star: radius = farthest distance.
        assert optimal_radius(pts, 0, 3) == pytest.approx(1.0)

    def test_degree_constraint_binds(self):
        """With degree 1 the same instance must do worse than the star."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        assert optimal_radius(pts, 0, 1) > 1.0

    def test_equilateral_triangle_degree1(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        # Chain through either receiver: 1 + 1 = 2 vs direct... chain is
        # 0->a->b with |ab| = 1, total 2; any other chain the same.
        assert optimal_radius(pts, 0, 1) == pytest.approx(2.0)


class TestOracleProperties:
    def test_never_worse_than_any_heuristic(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            pts = rng.uniform(-1, 1, size=(6, 2))
            for degree in (1, 2, 3):
                opt = optimal_radius(pts, 0, degree)
                heur = compact_tree(pts, 0, degree).radius()
                assert opt <= heur + 1e-9

    def test_monotone_in_degree(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-1, 1, size=(6, 2))
        radii = [optimal_radius(pts, 0, d) for d in (1, 2, 3, 5)]
        assert all(a >= b - 1e-12 for a, b in zip(radii, radii[1:]))

    def test_lower_bound_farthest_point(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(-1, 1, size=(7, 2))
        farthest = float(np.linalg.norm(pts - pts[0], axis=1).max())
        assert optimal_radius(pts, 0, 2) >= farthest - 1e-12

    def test_tree_is_valid_and_achieves_radius(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(-1, 1, size=(6, 2))
        tree = optimal_radius_tree(pts, 0, 2)
        tree.validate(max_out_degree=2)
        assert tree.radius() == pytest.approx(optimal_radius(pts, 0, 2))

    def test_brute_force_cross_check(self):
        """Independent oracle: enumerate parent vectors with itertools
        and compare on a tiny instance."""
        rng = np.random.default_rng(6)
        pts = rng.uniform(-1, 1, size=(5, 2))
        degree = 2
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)

        best = np.inf
        for parents in itertools.product(range(5), repeat=4):
            parent = np.array([0] + list(parents))
            if np.any(parent[1:] == np.arange(1, 5)):
                continue
            counts = np.bincount(parent[1:], minlength=5)
            if counts.max() > degree:
                continue
            # Check acyclicity and compute radius by chasing.
            radius = 0.0
            ok = True
            for v in range(1, 5):
                total, walk, hops = 0.0, v, 0
                while walk != 0:
                    total += dist[walk, parent[walk]]
                    walk = int(parent[walk])
                    hops += 1
                    if hops > 5:
                        ok = False
                        break
                if not ok:
                    break
                radius = max(radius, total)
            if ok:
                best = min(best, radius)

        assert optimal_radius(pts, 0, degree) == pytest.approx(best)


class TestGuards:
    def test_size_cap(self):
        with pytest.raises(ValueError, match="capped"):
            optimal_radius(np.zeros((MAX_EXACT_NODES + 1, 2)), 0, 2)

    def test_infeasible_degree(self):
        pts = np.zeros((4, 2))
        # Degree bound 1 with 3 receivers is feasible (a chain), but a
        # degree bound of 0 is not.
        with pytest.raises(ValueError):
            optimal_radius(pts, 0, 0)

    def test_bad_source(self):
        with pytest.raises(ValueError, match="source"):
            optimal_radius(np.zeros((3, 2)), 5, 2)
