"""The build service: cache, coalescing, backpressure, deadlines, TCP."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.analysis.oracle import check_tree
from repro.core.builder import build_polar_grid_tree
from repro.core.registry import register_builder, unregister_builder
from repro.core.tree import MulticastTree
from repro.service import (
    BackgroundServer,
    BuildCache,
    BuildRequest,
    DeadlineExceeded,
    ServiceClient,
    ServiceClientError,
    ServiceOverload,
    TreeBuildService,
    WorkloadSpec,
    canonical_key,
)
from repro.service.core import request_from_payload
from repro.workloads.generators import unit_disk

POINTS = unit_disk(150, seed=5)
PARAMS = {"max_out_degree": 6}


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


class TestCanonicalKey:
    def test_identical_requests_share_a_key(self):
        a = canonical_key(POINTS, 0, "polar-grid", {"max_out_degree": 6})
        b = canonical_key(POINTS.copy(), 0, "polar-grid", {"max_out_degree": 6})
        assert a == b

    def test_param_order_does_not_matter(self):
        a = canonical_key(POINTS, 0, "polar-grid", {"max_out_degree": 6, "k": 3})
        b = canonical_key(POINTS, 0, "polar-grid", {"k": 3, "max_out_degree": 6})
        assert a == b

    def test_every_request_dimension_changes_the_key(self):
        base = canonical_key(POINTS, 0, "polar-grid", PARAMS)
        assert canonical_key(POINTS, 1, "polar-grid", PARAMS) != base
        assert canonical_key(POINTS, 0, "bisection", PARAMS) != base
        assert (
            canonical_key(POINTS, 0, "polar-grid", {"max_out_degree": 4})
            != base
        )
        other = POINTS.copy()
        other[0, 0] += 1e-9
        assert canonical_key(other, 0, "polar-grid", PARAMS) != base

    def test_transposed_points_cannot_collide(self):
        square = unit_disk(2, seed=1)  # (2, 2): same bytes transposed
        a = canonical_key(square, 0, "polar-grid", PARAMS)
        b = canonical_key(
            np.ascontiguousarray(square.T), 0, "polar-grid", PARAMS
        )
        assert a != b or np.array_equal(square, square.T)

    def test_array_valued_params_are_hashable(self):
        budgets = np.full(POINTS.shape[0], 3)
        a = canonical_key(
            POINTS, 0, "compact-tree", {"max_out_degree": budgets}
        )
        b = canonical_key(
            POINTS, 0, "compact-tree", {"max_out_degree": budgets.copy()}
        )
        assert a == b


def small_result(seed=0):
    pts = unit_disk(80, seed=seed)
    return build_polar_grid_tree(pts, 0, 6)


class TestBuildCache:
    def test_miss_then_hit(self):
        cache = BuildCache(max_bytes=10**7)
        assert cache.get("k") is None
        result = small_result()
        cache.put("k", result)
        assert cache.get("k") is result
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_respects_byte_budget(self):
        results = [small_result(seed=s) for s in range(4)]
        from repro.service.cache import entry_nbytes

        budget = int(entry_nbytes(results[0]) * 2.5)  # room for two
        cache = BuildCache(max_bytes=budget)
        for s, result in enumerate(results):
            cache.put(f"k{s}", result)
        assert len(cache) == 2
        assert cache.evictions == 2
        assert cache.current_bytes <= budget
        # Most-recently-used survive; the oldest were evicted.
        assert cache.get("k3") is results[3]
        assert cache.get("k0") is None

    def test_hit_refreshes_lru_position(self):
        results = [small_result(seed=s) for s in range(3)]
        from repro.service.cache import entry_nbytes

        cache = BuildCache(max_bytes=int(entry_nbytes(results[0]) * 2.5))
        cache.put("a", results[0])
        cache.put("b", results[1])
        assert cache.get("a") is results[0]  # refresh: b is now LRU
        cache.put("c", results[2])
        assert "a" in cache and "b" not in cache

    def test_eviction_spills_and_reloads(self, tmp_path):
        from repro.service.cache import entry_nbytes

        results = [small_result(seed=s) for s in range(3)]
        cache = BuildCache(
            max_bytes=int(entry_nbytes(results[0]) * 1.5),
            spill_dir=tmp_path,
        )
        for s, result in enumerate(results):
            cache.put(f"k{s}", result)
        assert cache.spill_writes == 2
        reloaded = cache.get("k0")
        assert reloaded is not None
        assert cache.spill_reads == 1
        original = results[0]
        assert np.array_equal(reloaded.tree.parent, original.tree.parent)
        assert np.array_equal(reloaded.tree.points, original.tree.points)
        assert reloaded.rings == original.rings
        assert reloaded.max_out_degree == original.max_out_degree

    def test_oversized_entry_not_admitted_to_memory(self, tmp_path):
        cache = BuildCache(max_bytes=10, spill_dir=tmp_path)
        cache.put("big", small_result())
        assert len(cache) == 0
        assert cache.spill_writes == 1
        assert cache.get("big") is not None  # served from disk

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            BuildCache(max_bytes=-1)


class TestRequests:
    def test_exactly_one_point_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            BuildRequest().resolve_points()
        with pytest.raises(ValueError, match="exactly one"):
            BuildRequest(
                points=POINTS, workload=WorkloadSpec()
            ).resolve_points()

    def test_workload_materialisation_is_deterministic(self):
        spec = WorkloadSpec("unit-disk", 200, seed=9)
        assert np.array_equal(spec.materialize(), spec.materialize())

    def test_unknown_workload_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec("mystery", 10).materialize()

    def test_wire_decoding_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request field"):
            request_from_payload({"op": "build", "pointz": [[0, 0]]})


class SlowBuilder:
    """A registered builder that blocks until released (fault clock)."""

    def __init__(self, name="test-slow"):
        self.name = name
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __enter__(self):
        outer = self

        @register_builder(self.name, summary="test-only gated builder")
        def gated(points, source=0, max_out_degree=6):
            outer.calls += 1
            outer.entered.set()
            assert outer.release.wait(30), "test forgot to release the gate"
            return build_polar_grid_tree(points, source, max_out_degree)

        return self

    def __exit__(self, *exc_info):
        self.release.set()
        unregister_builder(self.name)


class TestService:
    def test_repeat_requests_hit_the_cache(self):
        async def body():
            service = TreeBuildService()
            try:
                request = BuildRequest(points=POINTS, params=dict(PARAMS))
                first = await service.submit(request)
                second = await service.submit(
                    BuildRequest(points=POINTS, params=dict(PARAMS))
                )
                return first, second, service.stats()
            finally:
                service.close()

        first, second, stats = run(body())
        assert not first.cached and second.cached
        assert second.result is first.result
        assert stats["builds"] == 1
        assert stats["cache"]["hits"] == 1

    def test_workload_and_raw_points_share_one_cache_entry(self):
        async def body():
            service = TreeBuildService()
            try:
                spec = WorkloadSpec("unit-disk", 150, seed=5)
                by_workload = await service.submit(
                    BuildRequest(workload=spec, params=dict(PARAMS))
                )
                by_points = await service.submit(
                    BuildRequest(points=POINTS, params=dict(PARAMS))
                )
                return by_workload, by_points
            finally:
                service.close()

        by_workload, by_points = run(body())
        assert by_workload.key == by_points.key
        assert by_points.cached

    def test_concurrent_identical_requests_build_once(self):
        async def body(slow):
            service = TreeBuildService()
            try:
                requests = [
                    BuildRequest(points=POINTS, builder=slow.name)
                    for _ in range(5)
                ]
                tasks = [
                    asyncio.create_task(service.submit(r)) for r in requests
                ]
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, slow.entered.wait, 10)
                slow.release.set()
                responses = await asyncio.gather(*tasks)
                return responses, service
            finally:
                service.close()

        with SlowBuilder() as slow:
            responses, service = run(body(slow))
        assert slow.calls == 1
        assert service.builds == 1
        assert sum(1 for r in responses if r.coalesced) == 4
        assert sum(1 for r in responses if not r.coalesced) == 1
        keys = {r.key for r in responses}
        assert len(keys) == 1

    def test_overload_rejection_is_structured(self):
        async def body(slow):
            service = TreeBuildService(max_pending=1)
            try:
                blocker = asyncio.create_task(
                    service.submit(
                        BuildRequest(points=POINTS, builder=slow.name)
                    )
                )
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, slow.entered.wait, 10)
                # A *different* key must be rejected immediately...
                other = unit_disk(60, seed=8)
                with pytest.raises(ServiceOverload) as info:
                    await service.submit(
                        BuildRequest(points=other, builder=slow.name)
                    )
                # ...while an identical one coalesces (adds no work).
                join = asyncio.create_task(
                    service.submit(
                        BuildRequest(points=POINTS, builder=slow.name)
                    )
                )
                await asyncio.sleep(0)
                slow.release.set()
                await asyncio.gather(blocker, join)
                return info.value, service.stats()
            finally:
                service.close()

        with SlowBuilder() as slow:
            error, stats = run(body(slow))
        assert (error.pending, error.limit) == (1, 1)
        assert stats["rejected"] == 1
        assert stats["coalesced"] == 1

    def test_deadline_expiry_and_late_cache_absorption(self):
        async def body(slow):
            service = TreeBuildService()
            try:
                with pytest.raises(DeadlineExceeded) as info:
                    await service.submit(
                        BuildRequest(
                            points=POINTS,
                            builder=slow.name,
                            deadline=0.05,
                        )
                    )
                assert info.value.deadline == 0.05
                slow.release.set()
                for _ in range(200):  # the late build lands in the cache
                    if service.builds:
                        break
                    await asyncio.sleep(0.05)
                retry = await service.submit(
                    BuildRequest(points=POINTS, builder=slow.name)
                )
                return retry, service.stats()
            finally:
                service.close()

        with SlowBuilder() as slow:
            retry, stats = run(body(slow))
        assert retry.cached, "late build must be absorbed into the cache"
        assert stats["deadline_expired"] == 1
        assert stats["builds"] == 1

    def test_default_deadline_comes_from_the_resilience_policy(self):
        from repro.experiments.resilience import ResiliencePolicy

        async def body(slow):
            service = TreeBuildService(
                policy=ResiliencePolicy(timeout=0.05)
            )
            try:
                with pytest.raises(DeadlineExceeded):
                    await service.submit(
                        BuildRequest(points=POINTS, builder=slow.name)
                    )
            finally:
                slow.release.set()
                service.close()

        with SlowBuilder() as slow:
            run(body(slow))

    def test_builder_errors_propagate_to_every_coalescer(self):
        async def body():
            service = TreeBuildService()
            try:
                # max_out_degree=1 is rejected inside the build.
                request = BuildRequest(
                    points=POINTS, params={"max_out_degree": 1}
                )
                with pytest.raises(ValueError, match="max_out_degree"):
                    await service.submit(request)
                assert service.stats()["builds"] == 0
                assert len(service._inflight) == 0
            finally:
                service.close()

        run(body())

    def test_rejects_bad_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            TreeBuildService(max_pending=0)


class TestTCPService:
    def test_full_protocol_round_trip(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                assert client.ping()
                workload = {"kind": "unit-disk", "n": 400, "seed": 2}
                first = client.build(
                    workload=workload, params={"max_out_degree": 4}
                )
                assert not first["cached"]
                assert first["builder"] == "polar-grid"
                assert first["n"] == 400
                second = client.build(
                    workload=workload, params={"max_out_degree": 4}
                )
                assert second["cached"]
                assert second["key"] == first["key"]

                reply, tree = client.build_tree(
                    workload=workload, params={"max_out_degree": 4}
                )
                report = check_tree(tree, d_max=4)
                assert report.ok, report.render()
                assert tree.n == 400

                stats = client.stats()
                assert stats["builds"] == 1
                assert stats["cache"]["hits"] >= 2

                names = [b["name"] for b in client.builders()]
                assert "polar-grid" in names and "quadtree" in names

    def test_structured_errors_cross_the_wire(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                workload = {"kind": "unit-disk", "n": 50, "seed": 0}
                with pytest.raises(ServiceClientError) as info:
                    client.build(workload=workload, builder="nope")
                assert info.value.error_type == "UnknownBuilderError"
                assert "polar-grid" in info.value.error["known"]

                with pytest.raises(ServiceClientError) as info:
                    client.build(workload=workload, params={"bogus": 1})
                assert info.value.error_type == "BuilderParamError"
                assert info.value.error["rejected"] == ["bogus"]

                with pytest.raises(ServiceClientError) as info:
                    client.build(
                        workload={"kind": "unit-disk", "n": 150_000, "seed": 1},
                        deadline=0.001,
                    )
                assert info.value.error_type == "DeadlineExceeded"
                assert info.value.error["deadline"] == 0.001

    def test_raw_points_round_trip(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                reply = client.build(
                    points=POINTS, params={"max_out_degree": 6}
                )
                assert reply["n"] == POINTS.shape[0]
                again = client.build(
                    points=POINTS, params={"max_out_degree": 6}
                )
                assert again["cached"]

    def test_shutdown_op_stops_the_server(self):
        server = BackgroundServer().start()
        with ServiceClient(port=server.port) as client:
            client.shutdown()
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
        server.stop()  # idempotent after shutdown


@pytest.mark.slow
class TestServiceSmokeTool:
    def test_smoke_tool_passes(self, capsys):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[1] / "tools" / "service_smoke.py"
        )
        module_spec = importlib.util.spec_from_file_location("smoke", path)
        smoke = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(smoke)
        assert smoke.main(["--nodes", "1500", "--clients", "4"]) == 0
        assert "1 build" in capsys.readouterr().out


class TestUpdateOp:
    """The update op: warm cache entries mutate through the incremental path."""

    def test_update_mutates_and_readdresses_the_entry(self):
        async def body():
            service = TreeBuildService()
            try:
                first = await service.submit(
                    BuildRequest(points=POINTS, params=dict(PARAMS))
                )
                events = [
                    {"action": "join", "coords": [0.31, -0.17]},
                    {"action": "join", "coords": [-0.4, 0.2], "name": "late"},
                    {"action": "leave", "index": 5},
                    {"action": "leave", "name": "late"},
                ]
                update = await service.update(first.key, events)
                # The mutated tree's key must be the same content address
                # a from-scratch request over those points would get.
                readdress = await service.submit(
                    BuildRequest(
                        points=update.result.tree.points,
                        params=dict(PARAMS),
                    )
                )
                return first, update, readdress, service.stats()
            finally:
                service.close()

        first, update, readdress, stats = run(body())
        assert update.old_key == first.key
        assert update.key != first.key
        assert update.events_applied == 4
        assert update.counters["joins"] == 2
        assert update.counters["leaves"] == 2
        assert update.result.tree.n == POINTS.shape[0]
        report = check_tree(update.result.tree, d_max=6)
        assert report.ok, report.render()
        assert readdress.cached and readdress.key == update.key
        assert stats["updates"] == 1

    def test_unknown_key_is_structured(self):
        from repro.service import UnknownUpdateKey

        async def body():
            service = TreeBuildService()
            try:
                await service.update(
                    "0" * 64, [{"action": "join", "coords": [0.1, 0.1]}]
                )
            finally:
                service.close()

        with pytest.raises(UnknownUpdateKey) as info:
            run(body())
        assert info.value.key == "0" * 64

    def test_gridless_entry_is_unsupported(self):
        from repro.service import UpdateUnsupported

        async def body():
            service = TreeBuildService()
            try:
                built = await service.submit(
                    BuildRequest(
                        points=POINTS, builder="quadtree", params=dict(PARAMS)
                    )
                )
                await service.update(
                    built.key, [{"action": "join", "coords": [0.1, 0.1]}]
                )
            finally:
                service.close()

        with pytest.raises(UpdateUnsupported) as info:
            run(body())
        assert info.value.key

    def test_binary_mode_entry_is_unsupported(self):
        from repro.service import UpdateUnsupported

        async def body():
            service = TreeBuildService()
            try:
                built = await service.submit(
                    BuildRequest(points=POINTS, params={"max_out_degree": 2})
                )
                await service.update(
                    built.key, [{"action": "join", "coords": [0.1, 0.1]}]
                )
            finally:
                service.close()

        with pytest.raises(UpdateUnsupported) as info:
            run(body())
        assert "binary" in str(info.value) or "full" in str(info.value)

    def test_event_validation(self):
        async def body(events):
            service = TreeBuildService()
            try:
                built = await service.submit(
                    BuildRequest(points=POINTS, params=dict(PARAMS))
                )
                await service.update(built.key, events)
            finally:
                service.close()

        for bad in (
            [],
            [{"action": "reboot"}],
            [{"action": "join"}],  # join needs coords
            [{"action": "leave"}],  # leave needs name or index
            [{"action": "join", "coords": [0.1, 0.1], "bogus": 1}],
        ):
            with pytest.raises(ValueError):
                run(body(bad))

    def test_update_round_trips_over_tcp(self):
        with BackgroundServer() as server:
            with ServiceClient(port=server.port) as client:
                built = client.build(
                    points=POINTS, params={"max_out_degree": 6}
                )
                reply = client.update(
                    built["key"],
                    [
                        {"action": "join", "coords": [0.25, 0.33]},
                        {"action": "leave", "index": 3},
                    ],
                    include_tree=True,
                )
                assert reply["old_key"] == built["key"]
                assert reply["key"] != built["key"]
                assert reply["events_applied"] == 2
                tree = MulticastTree(
                    np.asarray(reply["points"]),
                    np.asarray(reply["parent"], dtype=np.int64),
                    reply["root"],
                ).validate()
                assert tree.n == POINTS.shape[0]
                # The new address is warm: a fresh build request over the
                # mutated membership hits the cache.
                again = client.build(
                    points=reply["points"], params={"max_out_degree": 6}
                )
                assert again["cached"] and again["key"] == reply["key"]

                with pytest.raises(ServiceClientError) as info:
                    client.update(
                        "f" * 64, [{"action": "join", "coords": [0.1, 0.1]}]
                    )
                assert info.value.error_type == "UnknownUpdateKey"
                assert info.value.error["key"] == "f" * 64
