"""Tests for ``tools/check_links.py``.

Covers the two behaviours ISSUE 4 hardened: example paths inside fenced
code blocks (including indented fences and fences with info strings)
must never be reported as broken links, and duplicate heading anchors
must fail the run.
"""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_repo_docs_are_clean(capsys):
    assert checker.main([]) == 0


def test_inline_link_regex_matches_basic_forms():
    text = "[a](docs/x.md) ![img](img/y.svg) [t](z.md#frag)"
    found = [m.group(1) for m in checker.INLINE_LINK_RE.finditer(text)]
    assert found == ["docs/x.md", "img/y.svg", "z.md#frag"]


class TestStripCode:
    def test_plain_fence_removed(self):
        text = "before\n```\n[gone](missing.md)\n```\nafter"
        assert "missing.md" not in checker.strip_code(text)
        assert "before" in checker.strip_code(text)

    def test_fence_with_info_string_removed(self):
        text = "```bash\npython -m repro table1 --resume [x](a.md)\n```"
        assert "a.md" not in checker.strip_code(text)

    def test_indented_fence_removed(self):
        text = "- item\n   ```\n   [gone](missing.md)\n   ```\n- next"
        stripped = checker.strip_code(text)
        assert "missing.md" not in stripped
        assert "next" in stripped

    def test_tilde_line_inside_backtick_fence_is_content(self):
        text = "```\n~~~\n[gone](missing.md)\n```\n[kept](README.md)"
        stripped = checker.strip_code(text)
        assert "missing.md" not in stripped
        assert "README.md" in stripped

    def test_shorter_marker_does_not_close(self):
        text = "````\n```\n[gone](missing.md)\n````\n[kept](README.md)"
        stripped = checker.strip_code(text)
        assert "missing.md" not in stripped
        assert "README.md" in stripped

    def test_inline_code_spans_removed(self):
        assert "a.md" not in checker.strip_code("see `[x](a.md)` here")


class TestAnchors:
    def test_inline_code_heading_keeps_text(self, tmp_path):
        md = tmp_path / "f.md"
        md.write_text("## `repro.core`\n")
        assert "reprocore" in checker.anchors_of(md)

    def test_repeated_headings_get_github_suffixes(self, tmp_path):
        md = tmp_path / "f.md"
        md.write_text("## Setup\n\ntext\n\n## Setup\n")
        assert {"setup", "setup-1"} <= checker.anchors_of(md)

    def test_heading_inside_fence_is_not_an_anchor(self, tmp_path):
        md = tmp_path / "f.md"
        md.write_text("```sh\n# not a heading\n```\n## Real\n")
        assert checker.anchors_of(md) == {"real"}


class TestDuplicateAnchors:
    def test_duplicates_reported(self, tmp_path):
        md = tmp_path / "f.md"
        md.write_text("## Usage\n\n## Usage\n")
        assert checker.duplicate_anchors_of(md) == ["usage"]

    def test_unique_headings_clean(self, tmp_path):
        md = tmp_path / "f.md"
        md.write_text("## One\n\n## Two\n")
        assert checker.duplicate_anchors_of(md) == []

    def test_main_exits_nonzero_on_duplicates(self, tmp_path, capsys):
        md = tmp_path / "f.md"
        md.write_text("## Usage\n\n## Usage\n")
        rc = checker.main([str(md)])
        assert rc == 1
        assert "duplicate anchor" in capsys.readouterr().err


class TestBrokenLinks:
    def test_missing_target_detected(self, tmp_path, monkeypatch):
        md = tmp_path / "f.md"
        md.write_text("[x](does-not-exist.md)\n")
        monkeypatch.setattr(checker, "REPO", tmp_path)
        assert checker.main([str(md)]) == 1

    def test_missing_fragment_detected(self, tmp_path, monkeypatch):
        target = tmp_path / "t.md"
        target.write_text("## Present\n")
        md = tmp_path / "f.md"
        md.write_text("[x](t.md#absent)\n")
        monkeypatch.setattr(checker, "REPO", tmp_path)
        assert checker.main([str(md)]) == 1

    def test_good_fragment_passes(self, tmp_path, monkeypatch):
        target = tmp_path / "t.md"
        target.write_text("## Present\n")
        md = tmp_path / "f.md"
        md.write_text("[x](t.md#present)\n")
        monkeypatch.setattr(checker, "REPO", tmp_path)
        assert checker.main([str(md)]) == 0
