"""Tests for the Host model."""

import numpy as np
import pytest

from repro.overlay.host import Host, fanout_from_bandwidth


class TestHost:
    def test_basic_construction(self):
        h = Host(name="a", coords=(1.0, 2.0), max_fanout=4)
        assert h.dim == 2
        assert h.coords == (1.0, 2.0)

    def test_coords_coerced_to_floats(self):
        h = Host(name="a", coords=(1, 2, 3))
        assert h.coords == (1.0, 2.0, 3.0)
        assert h.dim == 3

    def test_distance(self):
        a = Host(name="a", coords=(0.0, 0.0))
        b = Host(name="b", coords=(3.0, 4.0))
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    def test_distance_dim_mismatch(self):
        a = Host(name="a", coords=(0.0, 0.0))
        b = Host(name="b", coords=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="different spaces"):
            a.distance_to(b)

    def test_rejects_nan_coords(self):
        with pytest.raises(ValueError, match="non-finite"):
            Host(name="a", coords=(np.nan, 0.0))

    def test_rejects_negative_fanout(self):
        with pytest.raises(ValueError, match="fan-out"):
            Host(name="a", coords=(0.0, 0.0), max_fanout=-1)

    def test_rejects_negative_processing_delay(self):
        with pytest.raises(ValueError, match="processing"):
            Host(name="a", coords=(0.0, 0.0), processing_delay=-0.1)

    def test_rejects_empty_coords(self):
        with pytest.raises(ValueError, match="at least one"):
            Host(name="a", coords=())

    def test_frozen(self):
        h = Host(name="a", coords=(0.0, 0.0))
        with pytest.raises(AttributeError):
            h.max_fanout = 3


class TestFanoutFromBandwidth:
    def test_basic(self):
        assert fanout_from_bandwidth(10_000, 3_000) == 3

    def test_exact_multiple(self):
        assert fanout_from_bandwidth(9_000, 3_000) == 3

    def test_leaf_only(self):
        assert fanout_from_bandwidth(1_000, 3_000) == 0

    def test_zero_stream_rejected(self):
        with pytest.raises(ValueError, match="stream"):
            fanout_from_bandwidth(1_000, 0)

    def test_negative_uplink_rejected(self):
        with pytest.raises(ValueError, match="uplink"):
            fanout_from_bandwidth(-1, 100)
