"""Differential churn-sequence suite for cell-local incremental maintenance.

Covers the incremental engine end to end: the EXPERIMENTS.md churn
profiles replayed with a per-event oracle and from-scratch comparison,
seeded fuzz-corpus traces (including past regressions), the
cell-locality acceptance criterion (a steady-state event never re-runs
the global layout), the amortized drift counter's properties, the
geometry-drift refit trigger, and the dangling-representative
regression.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.analysis.oracle import check_incremental_state, check_tree
from repro.core.builder import build_polar_grid_tree
from repro.core.grid import CellTable
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.incremental import DELAY_DRIFT_BOUND, IncrementalGridTree
from repro.testing.fuzz import check_churn_instance, churn_instance_from_seed
from repro.workloads.churn import generate_churn_trace

# The named profiles documented in EXPERIMENTS.md ("Churn patterns").
CHURN_PROFILES = {
    "steady-state": dict(
        duration=40, arrival_rate=4, mean_session=10, session_sigma=1.0
    ),
    "flash-crowd": dict(
        duration=20, arrival_rate=20, mean_session=2, session_sigma=0.5
    ),
    "long-haul": dict(
        duration=60, arrival_rate=2, mean_session=30, session_sigma=1.5
    ),
}


def make_engine(n=60, dim=2, seed=0, scale=1.0, extra=None, **kw):
    """An engine adopted from a fresh build over a Gaussian cloud."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, dim)) * scale
    pts[0] = 0.0
    if extra is not None:
        pts = np.vstack([pts, np.asarray(extra, dtype=np.float64)])
    result = build_polar_grid_tree(pts, 0, (1 << dim) + 2)
    return IncrementalGridTree(result, **kw)


class TestChurnProfiles:
    """EXPERIMENTS.md churn patterns through the incremental path."""

    @pytest.mark.parametrize("profile", sorted(CHURN_PROFILES))
    def test_per_event_oracle_and_differential_bound(self, profile):
        events = generate_churn_trace(
            dim=2, seed=hash(profile) % (1 << 31), **CHURN_PROFILES[profile]
        )
        assert events, "profile produced an empty trace"
        ov = DynamicOverlay(
            np.zeros(2),
            max_out_degree=6,
            mode="incremental",
            bootstrap=8,
            rebuild_threshold=None,
        )
        differential_checks = 0
        for event in events:
            if event.action == "join":
                ov.join(event.name, event.coords)
            else:
                ov.leave(event.name)
            if ov.engine is not None:
                check_incremental_state(ov.engine).raise_if_failed()
            else:
                check_tree(ov.tree(), d_max=6).raise_if_failed()
            if ov.engine is not None and ov.n >= 3:
                fresh = build_polar_grid_tree(ov.tree().points, 0, 6)
                if fresh.radius > 0.0:
                    assert ov.radius() <= DELAY_DRIFT_BOUND * fresh.radius
                    differential_checks += 1
        # The trace must actually have exercised the incremental engine.
        assert ov.engine is not None
        assert differential_checks > 20
        ov.tree().validate(max_out_degree=6)


class TestSeededTraces:
    """Fuzz-corpus traces as a fixed regression suite.

    Indices 7, 27 and 58 of base seed 0 are the traces that exposed the
    stale-geometry delay blowups the refit trigger now repairs; keeping
    them here pins the fix independently of the nightly fuzz run.
    """

    @pytest.mark.parametrize("index", [0, 3, 7, 27, 58])
    def test_corpus_instance_clean(self, index):
        inst = churn_instance_from_seed(0, index)
        violations = check_churn_instance(
            inst.events, inst.dim, inst.d_max, inst.bootstrap
        )
        assert violations == []

    def test_corpus_is_deterministic(self):
        a = churn_instance_from_seed(5, 11)
        b = churn_instance_from_seed(5, 11)
        assert a == b
        assert a.events and a.bootstrap == 8


class TestCellLocality:
    """Acceptance: a steady-state event does work proportional to one cell."""

    def test_no_global_layout_spans_on_large_tree(self):
        rng = np.random.default_rng(17)
        pts = rng.normal(size=(10_000, 2))
        pts[0] = 0.0
        engine = IncrementalGridTree(build_polar_grid_tree(pts, 0, 6))
        with obs.capture() as cap:
            join = engine.join("probe", rng.normal(size=2))
            leave = engine.leave("probe")
        spans = [s["name"] for s in cap.spans]
        assert not any(
            "cell_layout" in name or "wire_cells" in name for name in spans
        ), spans
        assert cap.metrics["overlay.incremental.join.total"]["value"] == 1.0
        assert cap.metrics["overlay.incremental.leave.total"]["value"] == 1.0
        for receipt in (join, leave):
            assert not receipt.partial_rebuild
            assert not receipt.full_rebuild
            # One cell's worth of work, not the whole membership.
            touched = (
                receipt.cell_size + receipt.chain_hops + receipt.deps_repointed
            )
            assert touched < 200

    def test_receipt_reports_the_touched_cell(self):
        engine = make_engine(n=80, seed=3)
        receipt = engine.join("probe", np.array([0.4, -0.2]))
        assert receipt.gid == engine.cell_of[engine.index["probe"]]
        assert receipt.cell_size >= 1
        assert engine.names[receipt.parent] is not None


class TestDriftCounter:
    """Properties of the amortized-cost counter."""

    def test_fresh_build_counts_no_drift(self):
        engine = make_engine(n=100, seed=1)
        assert engine.drift_events == 0
        assert engine.partial_rebuilds == 0
        assert engine.full_rebuilds == 0

    def test_escapee_join_charges_drift(self):
        engine = make_engine(n=60, seed=2, drift_limit=50)
        far = np.array([engine.grid.r_max * 1.5, 0.0])
        receipt = engine.join("escapee", far)
        assert receipt.escaped
        assert engine.drift_events >= 1 or receipt.full_rebuild

    def test_counter_fires_within_bound_and_resets(self):
        # With the limit forced to 1, the first structural drift event
        # must trigger a rebuild in the same event, and reset to 0.
        engine = make_engine(n=60, seed=4, drift_limit=1)
        rng = np.random.default_rng(4)
        fired = None
        for i in range(200):
            receipt = engine.join(f"x{i}", rng.normal(size=2))
            if receipt.partial_rebuild or receipt.full_rebuild:
                fired = receipt
                break
            assert engine.drift_events == 0  # limit 1: never carried over
        assert fired is not None, "no drift in 200 joins"
        assert fired.drift_events == 0

    def test_explicit_partial_rebuild_resets_counter(self):
        engine = make_engine(n=60, seed=5, drift_limit=50)
        engine.join("escapee", np.array([engine.grid.r_max * 1.4, 0.1]))
        if engine.drift_events == 0:  # the event escalated to a refit
            engine.join("e2", np.array([0.0, engine.grid.r_max * 1.3]))
        assert engine.drift_events >= 1
        engine.partial_rebuild()
        assert engine.drift_events == 0
        assert engine.partial_rebuilds >= 1
        check_incremental_state(engine).raise_if_failed()

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_events=st.integers(min_value=1, max_value=40),
        drift_limit=st.integers(min_value=1, max_value=6),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_counter_invariants_under_random_churn(
        self, seed, n_events, drift_limit
    ):
        engine = make_engine(n=24, dim=2, seed=seed, drift_limit=drift_limit)
        rng = np.random.default_rng(seed)
        live = [nm for nm in engine.members() if nm != "__source__"]
        serial = 0
        for _ in range(n_events):
            if live and rng.random() < 0.4:
                receipt = engine.leave(live.pop(rng.integers(len(live))))
            else:
                name = f"h{serial}"
                serial += 1
                coords = rng.uniform(-3, 3, size=2)
                receipt = engine.join(name, coords)
                live.append(name)
            # The counter never reaches the limit at rest...
            assert 0 <= engine.drift_events < engine.drift_limit
            # ...and any rebuild leaves it reset.
            if receipt.partial_rebuild or receipt.full_rebuild:
                assert receipt.drift_events == 0


class TestGeometryTrigger:
    """The delay-bound refit trigger (regression: crash-churn-0-7)."""

    def test_antipodal_escapee_keeps_differential_bound(self):
        # A far member fitted at build time, then a farther join on the
        # opposite side: without a refit the newcomer chains behind the
        # first escapee and blows the bound (the original fuzz crash).
        engine = make_engine(
            n=8, dim=2, seed=6, scale=0.3, extra=[[4.0, 0.5]]
        )
        engine.join("opposite", np.array([-6.0, -0.5]))
        fresh = build_polar_grid_tree(engine.snapshot().tree.points, 0, 6)
        assert engine.radius() <= DELAY_DRIFT_BOUND * fresh.radius
        check_incremental_state(engine).raise_if_failed()

    def test_trigger_dormant_on_stationary_membership(self):
        engine = make_engine(n=120, dim=2, seed=7)
        rng = np.random.default_rng(7)
        live = [nm for nm in engine.members() if nm != "__source__"]
        for i in range(80):
            if i % 2 == 0:
                name = f"s{i}"
                engine.join(name, rng.normal(size=2))
                live.append(name)
            else:
                engine.leave(live.pop(rng.integers(len(live))))
        assert engine.full_rebuilds == 0

    def test_leave_of_far_member_recomputes_peaks(self):
        engine = make_engine(n=30, dim=2, seed=8, extra=[[3.5, 0.0]])
        far_name = engine.names[len(engine.names) - 1]
        before = engine._rho_peak
        engine.leave(far_name)
        assert engine._rho_peak < before
        check_incremental_state(engine).raise_if_failed()


class TestDanglingRepRegression:
    """Leaving a cell's last member must not strand its representative."""

    def test_celltable_remove_last_member_drops_rep(self):
        grid = build_polar_grid_tree(
            np.random.default_rng(9).normal(size=(40, 2)), 0, 6
        ).grid
        table = CellTable(grid)
        gid = 3
        assert table.add(gid, 7)  # spawned
        table.set_rep(gid, 7)
        assert table.remove(gid, 7)  # emptied
        assert table.dangling_reps() == []
        with pytest.raises(KeyError):
            table.rep(gid)

    def test_celltable_removing_the_rep_clears_it(self):
        grid = build_polar_grid_tree(
            np.random.default_rng(10).normal(size=(40, 2)), 0, 6
        ).grid
        table = CellTable(grid)
        table.add(4, 1)
        table.add(4, 2)
        table.set_rep(4, 1)
        assert not table.remove(4, 1)  # cell still occupied
        assert not table.has_rep(4)
        assert table.dangling_reps() == []

    def test_engine_leave_of_last_cell_member(self):
        engine = make_engine(n=40, dim=2, seed=11)
        singleton = next(
            g
            for g in sorted(engine.cells.occupied_gids())
            if g != 0 and engine.cells.size(g) == 1
        )
        name = engine.names[engine.cells.members(singleton)[0]]
        engine.leave(name)
        assert singleton not in engine.cells.occupied_gids()
        assert engine.cells.dangling_reps() == []
        check_incremental_state(engine).raise_if_failed()

    def test_overlay_leave_of_last_cell_member(self):
        # The same regression through DynamicOverlay's incremental mode.
        ov = DynamicOverlay(
            np.zeros(2),
            max_out_degree=6,
            mode="incremental",
            bootstrap=8,
            rebuild_threshold=None,
        )
        rng = np.random.default_rng(12)
        for i in range(30):
            ov.join(f"m{i}", rng.normal(size=2))
        engine = ov.engine
        assert engine is not None
        singleton = None
        for i in range(200):
            if singleton is not None:
                break
            ov.join(f"extra{i}", rng.normal(size=2) * 1.5)
            gid = ov.last_receipt.gid
            if gid != 0 and ov.engine.cells.size(gid) == 1:
                singleton = gid
        assert singleton is not None, "no singleton cell spawned"
        engine = ov.engine
        name = engine.names[engine.cells.members(singleton)[0]]
        ov.leave(name)
        assert ov.engine.cells.dangling_reps() == []
        check_incremental_state(ov.engine).raise_if_failed()


class TestDifferentialEquivalence:
    """Radius/degree invariants match a from-scratch build under churn."""

    @pytest.mark.parametrize("dim", [2, 3])
    def test_long_mixed_churn(self, dim):
        d_max = (1 << dim) + 2
        engine = make_engine(n=50, dim=dim, seed=dim)
        rng = np.random.default_rng(100 + dim)
        live = [nm for nm in engine.members() if nm != "__source__"]
        for i in range(150):
            if live and rng.random() < 0.45:
                engine.leave(live.pop(rng.integers(len(live))))
            else:
                name = f"d{i}"
                engine.join(name, rng.uniform(-1, 1, size=dim))
                live.append(name)
        snap = engine.snapshot()
        snap.tree.validate(max_out_degree=d_max)
        fresh = build_polar_grid_tree(snap.tree.points, 0, d_max)
        assert snap.tree.radius() <= DELAY_DRIFT_BOUND * fresh.radius
        check_incremental_state(engine).raise_if_failed()

    def test_shrink_to_two_members_and_regrow(self):
        engine = make_engine(n=20, dim=2, seed=13)
        for nm in list(engine.members()):
            if nm != "__source__" and engine.live_count > 2:
                engine.leave(nm)
        rng = np.random.default_rng(13)
        for i in range(30):
            engine.join(f"r{i}", rng.normal(size=2))
        check_incremental_state(engine).raise_if_failed()
        assert engine.live_count == 32
