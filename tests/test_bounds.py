"""Tests for the analytic bounds module against the paper's numbers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    arc_length,
    bisection_constant_factor,
    bisection_path_bound,
    lemma1_probability,
    lemma2_threshold,
    polar_grid_upper_bound,
    ring_radius,
    rings_lower_bound,
    sum_of_inner_arcs,
)


class TestArcLengths:
    def test_delta_formula_unit_disk(self):
        """Delta_i = 2*pi / sqrt(2)^(k+i) on the unit disk."""
        k = 7
        for i in range(k + 1):
            expected = 2 * math.pi / math.sqrt(2.0) ** (k + i)
            assert arc_length(i, k) == pytest.approx(expected)

    def test_delta_monotone_decreasing(self):
        k = 10
        deltas = [arc_length(i, k) for i in range(k + 1)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))

    def test_s_k_closed_form(self):
        """S_k matches the geometric-series closed form in the paper."""
        for k in (2, 5, 9, 14):
            expected = (
                (2 * math.pi / math.sqrt(2.0) ** (k + 1))
                * (1 - (1 / math.sqrt(2.0)) ** (k - 1))
                / (1 - 1 / math.sqrt(2.0))
            )
            assert sum_of_inner_arcs(k) == pytest.approx(expected)

    def test_s_1_is_zero(self):
        assert sum_of_inner_arcs(1) == 0.0

    def test_ring_radius_bounds(self):
        assert ring_radius(0, 4) == pytest.approx(0.25)
        assert ring_radius(4, 4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ring_radius(5, 4)


class TestEq7Bound:
    def test_matches_table1_at_5m(self):
        """k=17 gives Bound 1.08 (deg 6) and 1.11 (deg 2) in Table I."""
        assert polar_grid_upper_bound(17, 6) == pytest.approx(1.08, abs=0.005)
        assert polar_grid_upper_bound(17, 2) == pytest.approx(1.11, abs=0.005)

    def test_matches_table1_at_1m(self):
        assert polar_grid_upper_bound(15, 6) == pytest.approx(1.15, abs=0.005)
        assert polar_grid_upper_bound(15, 2) == pytest.approx(1.22, abs=0.005)

    def test_matches_table1_50k(self):
        """The 50,000-node row has integral average k=11, so the paper's
        Bound column is exactly eq.(7) there: 1.61 / 1.88. (Small-n rows
        average the bound over a mix of k values and cannot be compared
        pointwise.)"""
        assert polar_grid_upper_bound(11, 6) == pytest.approx(1.61, abs=0.01)
        assert polar_grid_upper_bound(11, 2) == pytest.approx(1.88, abs=0.01)
        assert polar_grid_upper_bound(14, 6) == pytest.approx(1.22, abs=0.01)
        assert polar_grid_upper_bound(14, 2) == pytest.approx(1.32, abs=0.01)

    def test_bound_approaches_r_max(self):
        assert polar_grid_upper_bound(40, 6) == pytest.approx(1.0, abs=1e-4)

    def test_degree2_dominates_degree6(self):
        for k in range(1, 20):
            assert polar_grid_upper_bound(k, 2) > polar_grid_upper_bound(k, 6)

    def test_scales_with_r_max(self):
        assert polar_grid_upper_bound(5, 6, r_max=2.0) == pytest.approx(
            2 * polar_grid_upper_bound(5, 6), rel=1e-12
        )

    @given(st.integers(1, 30))
    def test_monotone_decreasing_in_k(self, k):
        assert polar_grid_upper_bound(k + 1, 6) < polar_grid_upper_bound(k, 6)


class TestBisectionBound:
    def test_eq1_formula(self):
        got = bisection_path_bound(0.6, 1.0, 0.2, 0.7, 4)
        assert got == pytest.approx(max(0.3, 0.1) + 2 * 1.0 * 0.2)

    def test_eq2_doubles_arc(self):
        d4 = bisection_path_bound(0.6, 1.0, 0.2, 0.7, 4)
        d2 = bisection_path_bound(0.6, 1.0, 0.2, 0.7, 2)
        assert d2 - d4 == pytest.approx(2 * 1.0 * 0.2)

    def test_conservative_dominates_paper(self):
        paper = bisection_path_bound(0.6, 1.0, 0.2, 0.7, 4)
        safe = bisection_path_bound(0.6, 1.0, 0.2, 0.7, 4, conservative=True)
        assert safe >= paper

    def test_source_outside_rejected(self):
        with pytest.raises(ValueError, match="inside"):
            bisection_path_bound(0.6, 1.0, 0.2, 0.5, 4)

    def test_constant_factors(self):
        assert bisection_constant_factor(4) == 5.0
        assert bisection_constant_factor(6) == 5.0
        assert bisection_constant_factor(2) == 9.0
        with pytest.raises(ValueError):
            bisection_constant_factor(1)


class TestLemmas:
    def test_lemma1_formula(self):
        n, alpha = 1000.0, 0.4
        raw = n**alpha * math.exp(-(n**0.6))
        assert lemma1_probability(n, alpha) == pytest.approx(raw)

    def test_lemma1_clipped_to_one(self):
        assert lemma1_probability(2, 0.9) <= 1.0

    def test_lemma1_vanishes_for_alpha_below_1(self):
        assert lemma1_probability(1e6, 0.5) < 1e-300

    def test_lemma2_bound_holds(self):
        """For alpha <= 1/2 the bound never exceeds e^-1 (Lemma 2)."""
        for alpha in (0.1, 0.3, 0.5):
            for n in (1, 2, 5, 10, 100, 10_000):
                assert lemma1_probability(n, alpha) <= lemma2_threshold() + 1e-12

    def test_lemma2_fails_above_half(self):
        """alpha > 1/2 can exceed e^-1 — the lemma is tight."""
        assert lemma1_probability(3, 0.8) > lemma2_threshold()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lemma1_probability(0, 0.5)
        with pytest.raises(ValueError):
            lemma1_probability(10, 1.5)

    def test_rings_lower_bound(self):
        assert rings_lower_bound(1024) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            rings_lower_bound(0)


class TestBoundConsistencyWithBuilds:
    def test_observed_k_respects_eq5_statistically(self):
        """Built grids achieve k >= 1/2 log2 n - O(1) (eq. 5)."""
        from repro.core.builder import build_polar_grid_tree
        from repro.workloads.generators import unit_disk

        for n in (256, 2048, 16384):
            ks = [
                build_polar_grid_tree(unit_disk(n, seed=s), 0, 6).rings
                for s in range(5)
            ]
            assert min(ks) >= rings_lower_bound(n) - 1.0, (n, ks)
