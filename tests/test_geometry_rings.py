"""Unit + property tests for RingSegment splitting and membership."""

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry.polar import TWO_PI
from repro.geometry.rings import RingSegment


def segment_strategy():
    return st.builds(
        lambda r_in, thickness, start, span: RingSegment(
            r_inner=r_in,
            r_outer=r_in + thickness,
            theta_start=start,
            theta_span=span,
        ),
        st.floats(0.0, 5.0),
        st.floats(0.01, 5.0),
        st.floats(0.0, TWO_PI - 1e-9),
        st.floats(0.01, TWO_PI),
    )


class TestConstruction:
    def test_rejects_inverted_radii(self):
        with pytest.raises(ValueError, match="r_inner"):
            RingSegment(1.0, 0.5, 0.0, 1.0)

    def test_rejects_zero_span(self):
        with pytest.raises(ValueError, match="theta_span"):
            RingSegment(0.0, 1.0, 0.0, 0.0)

    def test_rejects_excess_span(self):
        with pytest.raises(ValueError, match="theta_span"):
            RingSegment(0.0, 1.0, 0.0, TWO_PI + 0.1)

    def test_full_circle_allowed(self):
        seg = RingSegment(0.0, 1.0, 0.0, TWO_PI)
        assert seg.area() == pytest.approx(np.pi)


class TestMeasurements:
    def test_area_quarter_annulus(self):
        seg = RingSegment(1.0, 2.0, 0.0, np.pi / 2)
        assert seg.area() == pytest.approx(0.5 * (np.pi / 2) * 3.0)

    def test_outer_arc_length(self):
        seg = RingSegment(0.5, 2.0, 0.0, 1.0)
        assert seg.outer_arc_length() == pytest.approx(2.0)

    def test_mid_values(self):
        seg = RingSegment(1.0, 3.0, 0.5, 1.0)
        assert seg.mid_radius() == pytest.approx(2.0)
        assert seg.mid_angle_offset() == pytest.approx(0.5)
        assert seg.radial_extent() == pytest.approx(2.0)


class TestContains:
    def test_basic_membership(self):
        seg = RingSegment(1.0, 2.0, 0.0, np.pi / 2)
        assert seg.contains(1.5, np.pi / 4)
        assert not seg.contains(0.5, np.pi / 4)  # below inner radius
        assert not seg.contains(1.5, np.pi)  # outside angle
        assert not seg.contains(2.5, np.pi / 4)  # beyond outer radius

    def test_half_open_radial_interval(self):
        seg = RingSegment(1.0, 2.0, 0.0, 1.0)
        assert not seg.contains(1.0, 0.5)  # inner boundary excluded
        assert seg.contains(2.0, 0.5)  # outer boundary included

    def test_center_in_zero_inner_segment(self):
        seg = RingSegment(0.0, 1.0, 0.0, TWO_PI)
        assert seg.contains(0.0, 0.0)

    def test_wraparound_angle(self):
        seg = RingSegment(0.0, 1.0, 3 * np.pi / 2, np.pi)  # wraps past 0
        assert seg.contains(0.5, 7 * np.pi / 4)
        assert seg.contains(0.5, np.pi / 4)
        assert not seg.contains(0.5, np.pi / 2 + 0.01)

    def test_vectorised(self):
        seg = RingSegment(0.0, 1.0, 0.0, np.pi)
        rho = np.array([0.5, 0.5, 2.0])
        theta = np.array([0.1, 3 * np.pi / 2, 0.1])
        assert seg.contains(rho, theta).tolist() == [True, False, False]


class TestSplitting:
    @given(segment_strategy())
    def test_split4_preserves_area(self, seg):
        parts = seg.split4()
        assert len(parts) == 4
        assert sum(p.area() for p in parts) == pytest.approx(seg.area())

    @given(segment_strategy())
    def test_split_radius_partitions(self, seg):
        inner, outer = seg.split_radius()
        assert inner.r_outer == pytest.approx(outer.r_inner)
        assert inner.r_inner == seg.r_inner
        assert outer.r_outer == seg.r_outer

    @given(segment_strategy())
    def test_split_angle_halves_span(self, seg):
        low, high = seg.split_angle()
        assert low.theta_span == pytest.approx(seg.theta_span / 2)
        assert high.theta_span == pytest.approx(seg.theta_span / 2)

    @given(
        segment_strategy(),
        st.floats(0.001, 0.999),
        st.floats(0.001, 0.999),
    )
    def test_quadrant_matches_split4(self, seg, fr, fa):
        """A point lands in exactly the sub-segment quadrant_of names.

        Points exactly on the split boundaries are excluded: there the
        two float formulations of the midpoint (the test's and the
        split's) can round to different sides. The algorithms only ever
        use quadrant_of, which assigns boundaries deterministically.
        """
        assume(abs(fr - 0.5) > 1e-6 and abs(fa - 0.5) > 1e-6)
        rho = seg.r_inner + fr * (seg.r_outer - seg.r_inner)
        theta = (seg.theta_start + fa * seg.theta_span) % TWO_PI
        quadrant = int(seg.quadrant_of(rho, theta))
        parts = seg.split4()
        inside = [bool(p.contains(rho, theta)) for p in parts]
        # Exactly one sub-segment contains the point, and it is the one
        # quadrant_of claims (boundary floats can disagree; quadrant_of
        # is the authority the algorithms use, contains the geometry).
        assert sum(inside) == 1
        assert inside[quadrant]

    def test_quadrant_order_convention(self):
        seg = RingSegment(0.0, 2.0, 0.0, 2.0)
        # (angle-low, radius-low) -> 0; (angle-low, radius-high) -> 1;
        # (angle-high, radius-low) -> 2; (angle-high, radius-high) -> 3.
        assert int(seg.quadrant_of(0.5, 0.5)) == 0
        assert int(seg.quadrant_of(1.5, 0.5)) == 1
        assert int(seg.quadrant_of(0.5, 1.5)) == 2
        assert int(seg.quadrant_of(1.5, 1.5)) == 3
