"""The differential harness: every builder on one instance, cross-checked."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import run_differential
from repro.testing.differential import (
    METAMORPHIC_TRANSFORMS,
    DifferentialReport,
)
from repro.workloads.generators import unit_ball, unit_disk


def vcodes(report: DifferentialReport) -> set[str]:
    return {v.code for v in report.violations}


class TestCleanInstances:
    @pytest.mark.parametrize(
        ("dim", "d_max"), [(2, 2), (2, 6), (3, 4), (3, 10)]
    )
    def test_uniform_clouds_are_clean(self, dim, d_max):
        points = (
            unit_disk(90, seed=11) if dim == 2 else unit_ball(90, dim=3, seed=11)
        )
        report = run_differential(points, 0, d_max, seed=dim)
        assert report.ok, report.render()
        built = {o.builder for o in report.outcomes}
        assert {"polar-grid", "bisection", "compact-tree", "capped-star"} <= built
        # Every transform produced a variant build for both tree builders.
        for name in METAMORPHIC_TRANSFORMS:
            assert f"polar-grid[{name}]" in built
            assert f"bisection[{name}]" in built

    def test_exact_optimum_runs_on_tiny_instances(self):
        report = run_differential(unit_disk(6, seed=12), 0, 3)
        assert report.ok, report.render()
        assert report.optimum is not None
        for outcome in report.outcomes:
            if outcome.radius is not None and "[" not in outcome.builder:
                assert outcome.radius >= report.optimum - 1e-9

    def test_two_nodes(self):
        report = run_differential(unit_disk(2, seed=13), 0, 2)
        assert report.ok, report.render()

    def test_off_source_root(self):
        points = unit_disk(40, seed=14)
        report = run_differential(points, 7, 6)
        assert report.ok, report.render()

    def test_render_and_to_dict(self):
        report = run_differential(unit_disk(30, seed=15), 0, 6)
        text = report.render()
        assert "clean" in text and "polar-grid" in text
        payload = report.to_dict()
        assert payload["ok"] is True
        lower = float(
            np.sqrt((unit_disk(30, seed=15) ** 2).sum(axis=1)).max()
        )
        for name, radius in payload["radii"].items():
            if "[" not in name:  # variants may be rescaled
                assert radius >= lower - 1e-9
        assert payload["violations"] == []


def _swap_builder(name, fn, wraps_tree=False):
    """Temporarily re-register ``name`` with ``fn``; return a restorer.

    The harness dispatches through :func:`repro.build`, so fault
    injection goes through the registry rather than module attributes.
    """
    from repro.core.registry import get_builder, register_builder

    original = get_builder(name)
    register_builder(name, summary=original.summary, wraps_tree=wraps_tree)(fn)

    def restore():
        register_builder(
            name,
            summary=original.summary,
            wraps_tree=original.wraps_tree,
        )(original.fn)

    return restore


class TestFailureDetection:
    def test_builder_exception_becomes_build_error(self):
        def explode(points, source=0, max_out_degree=6):
            raise RuntimeError("synthetic builder crash")

        restore = _swap_builder("compact-tree", explode, wraps_tree=True)
        try:
            report = run_differential(unit_disk(30, seed=16), 0, 6)
        finally:
            restore()
        assert not report.ok
        assert "BUILD_ERROR" in vcodes(report)
        assert any(
            "synthetic builder crash" in v.message for v in report.violations
        )

    def test_radius_inflation_breaks_the_metamorphic_layer(self):
        # A builder whose output quality depends on absolute position is
        # exactly what the translate transform exists to catch.
        from repro.core.registry import get_builder

        real = get_builder("polar-grid").fn
        calls = {"count": 0}

        def position_sensitive(points, source=0, max_out_degree=6):
            calls["count"] += 1
            if calls["count"] > 1:  # base build fine, variants degraded
                return real(points, source, max(2, max_out_degree - 4))
            return real(points, source, max_out_degree)

        restore = _swap_builder("polar-grid", position_sensitive)
        try:
            report = run_differential(unit_disk(120, seed=17), 0, 6)
        finally:
            restore()
        assert not report.ok
        assert "METAMORPHIC_RADIUS" in vcodes(report)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="d >= 2"):
            run_differential(np.zeros((5,)), 0, 4)
        with pytest.raises(ValueError, match="d_max"):
            run_differential(unit_disk(5, seed=1), 0, 1)
