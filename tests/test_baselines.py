"""Tests for the baseline heuristics."""

import numpy as np
import pytest

from repro.baselines.bandwidth_latency import bandwidth_latency_tree
from repro.baselines.compact_tree import compact_tree
from repro.baselines.naive import capped_star, random_feasible_tree
from repro.workloads.generators import unit_disk


ALL_BUILDERS = [
    ("compact", lambda pts, d: compact_tree(pts, 0, d)),
    ("bl", lambda pts, d: bandwidth_latency_tree(pts, 0, d, seed=1)),
    ("star", lambda pts, d: capped_star(pts, 0, d)),
    ("random", lambda pts, d: random_feasible_tree(pts, 0, d, seed=1)),
]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS)
@pytest.mark.parametrize("degree", [1, 2, 6])
@pytest.mark.parametrize("n", [1, 2, 5, 120])
def test_all_baselines_build_valid_trees(name, builder, degree, n):
    if degree == 1 and name in ("compact", "bl") and n > 2:
        # Degree-1 is a Hamiltonian path; all builders support it.
        pass
    points = unit_disk(n, seed=n + degree)
    tree = builder(points, degree)
    tree.validate(max_out_degree=degree)
    assert tree.n == n


class TestCompactTree:
    def test_greedy_beats_random(self):
        points = unit_disk(400, seed=3)
        greedy = compact_tree(points, 0, 4).radius()
        rand = random_feasible_tree(points, 0, 4, seed=3).radius()
        assert greedy < rand

    def test_respects_per_node_budgets(self):
        points = unit_disk(60, seed=4)
        budgets = np.full(60, 2, dtype=np.int64)
        budgets[0] = 5  # generous source
        budgets[10] = 0  # leaf-only host
        tree = compact_tree(points, 0, budgets)
        degrees = tree.out_degrees()
        assert np.all(degrees <= budgets)
        assert degrees[10] == 0

    def test_infeasible_budgets_raise(self):
        points = unit_disk(10, seed=5)
        budgets = np.zeros(10, dtype=np.int64)
        budgets[0] = 2  # source can feed 2, but nobody else can forward
        with pytest.raises(ValueError, match="exhausted"):
            compact_tree(points, 0, budgets)

    def test_source_greedy_chain_is_optimal_on_a_line(self):
        # Points on a line with degree 1: greedy yields the sorted chain.
        points = np.zeros((6, 2))
        points[:, 0] = [0.0, 5.0, 2.0, 1.0, 4.0, 3.0]
        tree = compact_tree(points, 0, 1)
        assert tree.radius() == pytest.approx(5.0)

    def test_delay_equals_parent_delay_plus_edge(self, delay_oracle):
        points = unit_disk(150, seed=6)
        tree = compact_tree(points, 0, 3)
        oracle = delay_oracle(points, tree.parent, 0)
        assert np.allclose(tree.root_delays(), oracle)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            compact_tree(unit_disk(5, seed=0), 0, -1)


class TestBandwidthLatency:
    def test_homogeneous_bandwidth_follows_latency(self):
        """With equal bandwidths the rule is greedy-latency in join
        order; the result must beat the random tree."""
        points = unit_disk(300, seed=7)
        bl = bandwidth_latency_tree(points, 0, 6, seed=7).radius()
        rand = random_feasible_tree(points, 0, 6, seed=7).radius()
        assert bl < rand

    def test_prefers_fat_pipes(self):
        """A fat-uplink host that joined near the source attracts
        children before any thin host does (widest-path-first)."""
        rng = np.random.default_rng(8)
        points = rng.uniform(-1, 1, size=(40, 2))
        bandwidth = np.ones(40)
        bandwidth[0] = 100.0  # source
        bandwidth[5] = 100.0  # the fat host
        order = [5] + [i for i in range(1, 40) if i != 5]
        tree = bandwidth_latency_tree(
            points, 0, 6, bandwidth=bandwidth, join_order=order
        )
        degrees = tree.out_degrees()
        # Source and the fat host saturate before any thin host is used:
        # 39 receivers, 12 wide slots, the rest behind thin uplinks.
        assert degrees[0] == 6
        assert degrees[5] == 6

    def test_fat_pipe_behind_thin_uplink_is_useless(self):
        """Width is the path bottleneck: a fat host that joined through
        a thin relay offers width 1 and attracts no preference."""
        rng = np.random.default_rng(8)
        points = rng.uniform(-1, 1, size=(12, 2))
        bandwidth = np.ones(12)
        bandwidth[0] = 100.0
        bandwidth[5] = 100.0
        # Saturate the source with thin hosts first, then join host 5.
        order = [1, 2, 3, 4, 6, 7, 5, 8, 9, 10, 11]
        tree = bandwidth_latency_tree(
            points, 0, 1000, bandwidth=bandwidth, join_order=order
        )
        # Budget is huge so the source takes everyone who joined before
        # it saturated; host 5 is downstream of the source in any case —
        # what matters is that late joiners do not all flock to host 5.
        assert tree.out_degrees()[5] <= 4

    def test_explicit_join_order(self):
        points = unit_disk(10, seed=9)
        order = list(range(9, 0, -1))
        tree = bandwidth_latency_tree(points, 0, 6, join_order=order)
        tree.validate(max_out_degree=6)

    def test_bad_join_order_rejected(self):
        points = unit_disk(5, seed=10)
        with pytest.raises(ValueError, match="permutation"):
            bandwidth_latency_tree(points, 0, 6, join_order=[1, 2, 3])

    def test_bad_bandwidth_rejected(self):
        points = unit_disk(5, seed=11)
        with pytest.raises(ValueError, match="positive"):
            bandwidth_latency_tree(points, 0, 6, bandwidth=np.zeros(5))

    def test_reproducible_with_seed(self):
        points = unit_disk(100, seed=12)
        a = bandwidth_latency_tree(points, 0, 4, seed=5)
        b = bandwidth_latency_tree(points, 0, 4, seed=5)
        assert np.array_equal(a.parent, b.parent)


class TestNaive:
    def test_capped_star_small_is_star(self):
        points = unit_disk(5, seed=13)
        tree = capped_star(points, 0, 6)
        assert np.all(tree.parent == 0)

    def test_capped_star_overflow_chains(self):
        points = unit_disk(30, seed=14)
        tree = capped_star(points, 0, 3)
        tree.validate(max_out_degree=3)
        assert tree.out_degrees()[0] == 3

    def test_random_tree_is_seeded(self):
        points = unit_disk(50, seed=15)
        a = random_feasible_tree(points, 0, 3, seed=2)
        b = random_feasible_tree(points, 0, 3, seed=2)
        c = random_feasible_tree(points, 0, 3, seed=3)
        assert np.array_equal(a.parent, b.parent)
        assert not np.array_equal(a.parent, c.parent)

    def test_degree_zero_rejected(self):
        points = unit_disk(5, seed=16)
        with pytest.raises(ValueError):
            capped_star(points, 0, 0)
        with pytest.raises(ValueError):
            random_feasible_tree(points, 0, 0)
