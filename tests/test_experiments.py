"""Tests for the experiment harness (runner, Table I, figures, reporting)."""

import pytest

from repro.experiments.figures import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    sweep,
)
from repro.experiments.reporting import ascii_chart, format_table
from repro.experiments.runner import TrialRecord, aggregate, run_trials
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1


class TestRunner:
    def test_run_trials_shape(self):
        records = run_trials(200, 6, trials=3, seed=1)
        assert len(records) == 3
        assert all(r.n == 200 and r.max_out_degree == 6 for r in records)
        assert all(r.rings >= 1 for r in records)

    def test_trials_are_independent(self):
        records = run_trials(300, 6, trials=3, seed=2)
        delays = {r.delay for r in records}
        assert len(delays) == 3

    def test_seed_reproducibility(self):
        a = run_trials(150, 2, trials=2, seed=3)
        b = run_trials(150, 2, trials=2, seed=3)
        assert [r.delay for r in a] == [r.delay for r in b]

    def test_aggregate_means(self):
        records = [
            TrialRecord(100, 6, 2, 4, 1.0, 2.0, 3.0, 0.1),
            TrialRecord(100, 6, 2, 6, 2.0, 4.0, 5.0, 0.3),
        ]
        row = aggregate(records)
        assert row.rings == pytest.approx(5.0)
        assert row.delay == pytest.approx(3.0)
        assert row.delay_std == pytest.approx(1.0)
        assert row.bound == pytest.approx(4.0)
        assert row.trials == 2

    def test_aggregate_rejects_mixed_configs(self):
        records = [
            TrialRecord(100, 6, 2, 4, 1.0, 2.0, 3.0, 0.1),
            TrialRecord(200, 6, 2, 4, 1.0, 2.0, 3.0, 0.1),
        ]
        with pytest.raises(ValueError, match="mix"):
            aggregate(records)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            aggregate([])

    def test_3d_trials(self):
        records = run_trials(200, 10, trials=2, dim=3, seed=4)
        assert all(r.dim == 3 for r in records)
        assert all(r.bound is None for r in records)


class TestTable1:
    def test_small_reproduction_matches_paper_trends(self):
        rows = run_table1(sizes=(100, 1000), trials=5, seed=0)
        assert len(rows) == 4  # 2 sizes x 2 degrees
        by_key = {(r.n, r.max_out_degree): r for r in rows}
        # Delay decreases with n for both degrees.
        assert by_key[(1000, 6)].delay < by_key[(100, 6)].delay
        assert by_key[(1000, 2)].delay < by_key[(100, 2)].delay
        # Degree-2 always costs more than degree-6.
        assert by_key[(100, 2)].delay > by_key[(100, 6)].delay
        # And within shouting distance of the published numbers.
        for (n, deg), row in by_key.items():
            paper_delay = PAPER_TABLE1[(n, deg)][2]
            assert row.delay == pytest.approx(paper_delay, rel=0.25), (n, deg)

    def test_bound_dominates_delay(self):
        rows = run_table1(sizes=(500,), trials=3, seed=1)
        for row in rows:
            assert row.bound > row.delay

    def test_formatting_contains_paper_columns(self):
        rows = run_table1(sizes=(100,), trials=2, seed=2)
        text = format_table1(rows)
        assert "Paper Delay" in text
        assert "1.852" in text  # the published value for (100, 6)

    def test_formatting_without_paper(self):
        rows = run_table1(sizes=(100,), trials=2, seed=2)
        text = format_table1(rows, show_paper=False)
        assert "Paper" not in text


class TestFigures:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep(sizes=(100, 500, 2000), trials=3, degrees=(6, 2), seed=0)

    def test_figure4(self, small_sweep):
        fig = figure4(results=small_sweep)
        assert fig.xs == [100, 500, 2000]
        assert set(fig.series) == {"bound eq.(7)", "max delay", "core delay"}
        # Bound dominates delay dominates... core is below delay.
        for i in range(3):
            assert fig.series["bound eq.(7)"][i] > fig.series["max delay"][i]
            assert fig.series["core delay"][i] < fig.series["max delay"][i]
        assert "Figure 4" in fig.render()

    def test_figure5_degree_gap(self, small_sweep):
        fig = figure5(results=small_sweep)
        for d2, d6 in zip(fig.series["out-degree 2"], fig.series["out-degree 6"]):
            assert d2 > d6

    def test_figure6_rings_grow(self, small_sweep):
        fig = figure6(results=small_sweep)
        ks = fig.series["rings k"]
        assert ks[0] < ks[1] < ks[2]

    def test_figure7_runtime_grows(self, small_sweep):
        fig = figure7(results=small_sweep)
        times = fig.series["out-degree 6 (s)"]
        assert times[2] > times[0]

    def test_figure8_3d(self):
        fig = figure8(sizes=(100, 1000), trials=2, seed=0)
        d2 = fig.series["out-degree 2"]
        d10 = fig.series["out-degree 10"]
        assert d2[0] > d10[0]
        # Both shrink with n.
        assert d2[1] < d2[0]
        assert d10[1] < d10[0]

    def test_figure_table_rendering(self, small_sweep):
        fig = figure6(results=small_sweep)
        table = fig.table()
        assert "rings k" in table


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [10, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.346" in text
        assert "-" in lines[3]

    def test_ascii_chart_contains_markers(self):
        chart = ascii_chart(
            [10, 100, 1000],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
        )
        assert "*" in chart
        assert "o" in chart
        assert "up" in chart and "down" in chart

    def test_ascii_chart_log_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_chart([0, 1], {"s": [1.0, 2.0]})

    def test_ascii_chart_validates_lengths(self):
        with pytest.raises(ValueError, match="length"):
            ascii_chart([1, 2], {"s": [1.0]})

    def test_ascii_chart_flat_series(self):
        # Constant y must not divide by zero.
        chart = ascii_chart([1, 10], {"s": [2.0, 2.0]}, log_x=True)
        assert "*" in chart
