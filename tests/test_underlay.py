"""Tests for the transit-stub underlay and link-stress analysis."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.embedding.delay_models import transit_stub_delays
from repro.embedding.gnp import gnp_embedding
from repro.embedding.underlay import TransitStubNetwork


@pytest.fixture(scope="module")
def network():
    return TransitStubNetwork.generate(40, n_transit=6, seed=100)


class TestGeneration:
    def test_matrix_view_matches_legacy_function(self):
        net = TransitStubNetwork.generate(20, n_transit=5, seed=7)
        legacy = transit_stub_delays(20, n_transit=5, seed=7)
        assert np.allclose(net.delay_matrix(), legacy)

    def test_host_count(self, network):
        assert len(network.hosts) == 40
        assert network.delay_matrix().shape == (40, 40)

    def test_graph_is_connected(self, network):
        import networkx as nx

        assert nx.is_connected(network.graph)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="two hosts"):
            TransitStubNetwork.generate(1)
        with pytest.raises(ValueError, match="transit"):
            TransitStubNetwork.generate(10, n_transit=1)

    def test_requires_graph_type(self):
        with pytest.raises(TypeError, match="networkx"):
            TransitStubNetwork("not a graph", ["a", "b"])


class TestRouting:
    def test_route_endpoints(self, network):
        path = network.route(0, 5)
        assert path[0] == network.hosts[0]
        assert path[-1] == network.hosts[5]

    def test_route_length_equals_delay(self, network):
        delays = network.delay_matrix()
        path = network.route(0, 5)
        total = sum(
            network.graph[a][b]["weight"] for a, b in zip(path, path[1:])
        )
        assert total == pytest.approx(delays[0, 5])


class TestLinkStress:
    def test_star_stress_concentrates_at_source_access(self, network):
        """A pure star sends every flow over the source's access link:
        stress there equals n - 1."""
        n = len(network.hosts)
        points = np.zeros((n, 2))  # coordinates irrelevant to stress
        points[:, 0] = np.arange(n)
        star = MulticastTree(points, np.zeros(n, dtype=np.int64), 0)
        stress = network.link_stress(star)
        assert stress["max"] == n - 1

    def test_tree_stress_below_star_stress(self, network):
        delays = network.delay_matrix()
        coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=101)
        tree = build_polar_grid_tree(coords, 0, 4).tree
        n = len(network.hosts)
        points = np.zeros((n, 2))
        star = MulticastTree(points, np.zeros(n, dtype=np.int64), 0)
        assert (
            network.link_stress(tree)["max"]
            < network.link_stress(star)["max"]
        )

    def test_stress_counts_sum_to_total_hops(self, network):
        delays = network.delay_matrix()
        coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=102)
        tree = build_polar_grid_tree(coords, 0, 4).tree
        stress = network.link_stress(tree)
        total_from_counts = sum(stress["counts"].values())
        total_hops = sum(
            len(network.route(int(p), int(c))) - 1
            for p, c in tree.edges().tolist()
        )
        assert total_from_counts == total_hops

    def test_size_mismatch_rejected(self, network):
        tree = MulticastTree(np.zeros((3, 2)), np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="hosts"):
            network.link_stress(tree)


class TestIpMulticastComparison:
    def test_ip_baseline_is_unicast_delays(self, network):
        ip = network.ip_multicast_baseline(source=0)
        delays = network.delay_matrix()
        assert ip["max_delay"] == pytest.approx(delays[0].max())
        assert ip["mean_delay"] == pytest.approx(
            delays[0, 1:].mean()
        )
        assert ip["stress"] == 1

    def test_overlay_pays_but_bounded(self, network):
        delays = network.delay_matrix()
        coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=104)
        tree = build_polar_grid_tree(coords, 0, 4).tree
        head2head = network.overlay_vs_ip_multicast(tree)
        assert head2head["delay_ratio"] >= 1.0 - 1e-9
        assert head2head["delay_ratio"] < 8.0
        assert head2head["overlay_max_stress"] >= 1
        assert head2head["ip_max_stress"] == 1

    def test_star_overlay_matches_ip_delay(self, network):
        """A pure star IS unicast from the source: same worst delay as
        IP multicast, but its stress concentrates at the access link."""
        n = len(network.hosts)
        star = MulticastTree(
            np.zeros((n, 2)), np.zeros(n, dtype=np.int64), 0
        )
        head2head = network.overlay_vs_ip_multicast(star)
        assert head2head["delay_ratio"] == pytest.approx(1.0)
        assert head2head["overlay_max_stress"] == n - 1


class TestPathInflation:
    def test_star_has_inflation_one(self, network):
        n = len(network.hosts)
        star = MulticastTree(
            np.zeros((n, 2)), np.zeros(n, dtype=np.int64), 0
        )
        inflation = network.path_inflation(star)
        assert np.allclose(inflation, 1.0)

    def test_inflation_at_least_one(self, network):
        delays = network.delay_matrix()
        coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=103)
        tree = build_polar_grid_tree(coords, 0, 4).tree
        inflation = network.path_inflation(tree)
        assert np.all(inflation >= 1.0 - 1e-9)
        assert inflation[tree.root] == 1.0
