"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.sizes is None

    def test_fig_commands_exist(self):
        for fig in ("fig4", "fig5", "fig6", "fig7", "fig8"):
            args = build_parser().parse_args([fig, "--trials", "2"])
            assert args.command == fig

    def test_demo_dim_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--dim", "7"])


class TestMain:
    def test_table1_text(self, capsys):
        rc = main(["table1", "--sizes", "100", "--trials", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Rings" in out
        assert "Paper Delay" in out

    def test_table1_json(self, capsys):
        rc = main(["table1", "--sizes", "100", "--trials", "2", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert rows[0]["n"] == 100

    def test_fig6_renders(self, capsys):
        rc = main(["fig6", "--sizes", "100", "1000", "--trials", "2", "--data"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "rings k" in out

    def test_fig8_runs_3d(self, capsys):
        rc = main(["fig8", "--sizes", "100", "--trials", "1"])
        assert rc == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_demo(self, capsys):
        rc = main(["demo", "--nodes", "500", "--degree", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "radius" in out
        assert "rings" in out

    def test_demo_3d(self, capsys):
        rc = main(["demo", "--nodes", "300", "--degree", "10", "--dim", "3"])
        assert rc == 0
        assert "radius" in capsys.readouterr().out

    def test_demo_svg_and_save(self, capsys, tmp_path):
        svg = tmp_path / "t.svg"
        npz = tmp_path / "t.npz"
        rc = main(
            [
                "demo",
                "--nodes",
                "200",
                "--svg",
                str(svg),
                "--save",
                str(npz),
            ]
        )
        assert rc == 0
        assert svg.exists()
        from repro.core.io import load_tree

        assert load_tree(npz).n == 200

    def test_diameter_command(self, capsys):
        rc = main(["diameter", "--nodes", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "root index" in out

    def test_verify_fast(self, capsys):
        rc = main(["verify", "--fast"])
        assert rc == 0
        assert "all claims verified" in capsys.readouterr().out

    @pytest.mark.parametrize("study", ["degrees", "regions", "algorithms"])
    def test_compare_studies(self, capsys, study):
        rc = main(
            ["compare", study, "--nodes", "800", "--trials", "1"]
        )
        assert rc == 0
        assert capsys.readouterr().out.strip()

    def test_compare_requires_study(self):
        with pytest.raises(SystemExit):
            main(["compare"])

    def test_figures_batch(self, tmp_path, capsys):
        out = tmp_path / "figs"
        rc = main(
            [
                "figures",
                "--sizes",
                "100",
                "--trials",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        names = {p.name for p in out.iterdir()}
        assert {"fig4.svg", "fig5.svg", "fig6.svg", "fig7.svg", "fig8.svg"} <= names
        assert {"fig4.txt", "fig8.txt"} <= names
