"""Tests for the square-grid (quadtree) bisection variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quadtree import build_quadtree_tree, quadtree_path_bound
from repro.workloads.generators import rectangle_points, unit_ball, unit_disk


class TestBasics:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 500])
    @pytest.mark.parametrize("degree", [4, 2])
    def test_valid_spanning_tree(self, n, degree):
        points = unit_disk(n, seed=n)
        result = build_quadtree_tree(points, 0, degree)
        result.tree.validate(max_out_degree=degree)
        assert result.tree.n == n

    def test_3d_full_is_octree(self):
        points = unit_ball(400, dim=3, seed=1)
        result = build_quadtree_tree(points, 0, 8)
        result.tree.validate(max_out_degree=8)

    def test_3d_binary(self):
        points = unit_ball(400, dim=3, seed=2)
        result = build_quadtree_tree(points, 0, 2)
        result.tree.validate(max_out_degree=2)

    def test_intermediate_degree_uses_binary(self):
        points = unit_disk(200, seed=3)
        result = build_quadtree_tree(points, 0, 3)
        result.tree.validate(max_out_degree=2)

    def test_duplicates_terminate(self):
        points = np.tile([[0.3, 0.3]], (40, 1))
        points[0] = [0.0, 0.0]
        for degree in (4, 2):
            result = build_quadtree_tree(points, 0, degree)
            result.tree.validate(max_out_degree=degree)

    def test_all_coincident(self):
        points = np.ones((10, 2))
        result = build_quadtree_tree(points, 0, 4)
        result.tree.validate(max_out_degree=4)
        assert result.radius == 0.0

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError, match="at least 2"):
            build_quadtree_tree(unit_disk(5, seed=0), 0, 1)

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError, match="source"):
            build_quadtree_tree(unit_disk(5, seed=0), 9, 4)


class TestPathBound:
    def test_bound_formula(self):
        assert quadtree_path_bound(2.0, 2, 4) == pytest.approx(
            2 * np.sqrt(2) * 2.0
        )
        assert quadtree_path_bound(2.0, 2, 2) == pytest.approx(
            2 * 2 * np.sqrt(2) * 2.0
        )

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            quadtree_path_bound(-1.0, 2, 4)
        with pytest.raises(ValueError):
            quadtree_path_bound(1.0, 0, 4)

    @pytest.mark.parametrize("degree", [4, 2])
    def test_paths_within_bound(self, degree):
        for seed in range(15):
            rng = np.random.default_rng(seed)
            points = rng.uniform(0.0, 1.0, size=(80, 2))
            result = build_quadtree_tree(points, 0, degree)
            side = float((points.max(axis=0) - points.min(axis=0)).max())
            bound = quadtree_path_bound(side, 2, degree)
            assert result.radius <= bound + 1e-9, seed


class TestQuality:
    def test_competitive_on_rectangles(self):
        """On box-shaped clouds the quadtree is the natural tool and
        should be within a modest factor of the lower bound."""
        points = rectangle_points(5_000, seed=4)
        result = build_quadtree_tree(points, 0, 4)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        assert result.radius <= 1.6 * farthest

    def test_beats_far_center_bisection_on_disks(self):
        """The polar far-centre segment inflates arc terms; the quadtree
        splits locally and usually wins on disk clouds."""
        from repro.core.builder import build_bisection_tree

        wins = 0
        for seed in range(5):
            points = unit_disk(2_000, seed=seed + 10)
            quad = build_quadtree_tree(points, 0, 4).radius
            polar = build_bisection_tree(points, 0, 4).radius
            wins += quad < polar
        assert wins >= 4

    @given(st.integers(0, 5_000), st.integers(2, 200))
    @settings(max_examples=30, deadline=None)
    def test_property_valid_trees(self, seed, n):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 2)) * rng.uniform(0.1, 10)
        for degree in (4, 2):
            result = build_quadtree_tree(points, 0, degree)
            result.tree.validate(max_out_degree=degree)
