"""Tests for overlay tree metrics."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.overlay.metrics import evaluate_tree
from repro.workloads.generators import unit_disk


def chain_tree(n: int) -> MulticastTree:
    points = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    parent = np.arange(-1, n - 1)
    parent[0] = 0
    return MulticastTree(points=points, parent=parent, root=0)


class TestEvaluateTree:
    def test_chain_metrics(self):
        m = evaluate_tree(chain_tree(5))
        assert m.nodes == 5
        assert m.radius == pytest.approx(4.0)
        assert m.mean_delay == pytest.approx((1 + 2 + 3 + 4) / 4)
        assert m.max_depth == 4
        assert m.max_out_degree == 1
        assert m.interior_nodes == 4
        assert m.max_stretch == pytest.approx(1.0)

    def test_single_node(self):
        tree = MulticastTree(np.zeros((1, 2)), np.array([0]), 0)
        m = evaluate_tree(tree)
        assert m.radius == 0.0
        assert m.mean_stretch == 1.0
        assert m.max_depth == 0

    def test_detour_stretch(self):
        pts = np.array([[0.0, 0.0], [0.0, 1.0], [0.0, 2.0]])
        # 2 is fed through 1 but lies on the straight line: stretch 1.
        tree = MulticastTree(pts, np.array([0, 0, 1]), 0)
        m = evaluate_tree(tree)
        assert m.max_stretch == pytest.approx(1.0)

    def test_p95_between_mean_and_max(self):
        points = unit_disk(2000, seed=50)
        tree = build_polar_grid_tree(points, 0, 6).tree
        m = evaluate_tree(tree)
        assert m.mean_delay <= m.p95_delay <= m.radius

    def test_as_dict_roundtrip(self):
        m = evaluate_tree(chain_tree(3))
        d = m.as_dict()
        assert d["nodes"] == 3
        assert set(d) >= {"radius", "mean_delay", "max_depth"}

    def test_forwarding_fairness_extremes(self):
        from repro.overlay.metrics import forwarding_fairness

        # A star: the source forwards everything, members forward
        # nothing at all — with zero member load the index is defined
        # as 1 (nobody is treated worse than anybody else).
        pts = np.zeros((5, 2))
        star = MulticastTree(pts, np.zeros(5, dtype=np.int64), 0)
        assert forwarding_fairness(star) == 1.0
        # A chain: every member but the last forwards exactly once.
        chain = chain_tree(5)
        # loads = [1,1,1,0] -> 9 / (4*3) = 0.75
        assert forwarding_fairness(chain) == pytest.approx(0.75)

    def test_striping_improves_fairness(self):
        from repro.overlay.metrics import forwarding_fairness
        from repro.overlay.multitree import build_striped_trees

        points = unit_disk(2_000, seed=52)
        single = build_polar_grid_tree(points, 0, 4).tree
        multi = build_striped_trees(points, 0, 4, 2)
        # Fairness of the *total* load across stripes.
        total = multi.total_out_degrees().astype(float)
        members = np.arange(1, 2_000)
        jain_multi = float(total[members].sum()) ** 2 / (
            members.size * float((total[members] ** 2).sum())
        )
        assert jain_multi > forwarding_fairness(single)

    def test_interior_nodes_counts_forwarders(self):
        points = unit_disk(500, seed=51)
        tree = build_polar_grid_tree(points, 0, 2).tree
        m = evaluate_tree(tree)
        degrees = tree.out_degrees()
        assert m.interior_nodes == int(np.count_nonzero(degrees))
        # A binary tree over 500 nodes needs at least ~250 forwarders.
        assert m.interior_nodes >= 249
