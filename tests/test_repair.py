"""Tests for post-failure tree repair."""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.overlay.repair import repair_after_failure
from repro.workloads.generators import unit_disk


def build(n=300, degree=6, seed=30):
    points = unit_disk(n, seed=seed)
    return build_polar_grid_tree(points, 0, degree).tree


class TestRepair:
    def test_leaf_failure_is_trivial(self):
        tree = build()
        leaf = int(np.flatnonzero(tree.out_degrees() == 0)[0])
        new_tree, index_map = repair_after_failure(tree, leaf, 6)
        new_tree.validate(max_out_degree=6)
        assert new_tree.n == tree.n - 1
        assert index_map[leaf] == -1

    def test_relay_failure_reattaches_orphans(self):
        tree = build()
        degrees = tree.out_degrees()
        relay = int(np.flatnonzero((degrees > 1) & (np.arange(tree.n) != 0))[0])
        new_tree, index_map = repair_after_failure(tree, relay, 6)
        new_tree.validate(max_out_degree=6)
        assert new_tree.n == tree.n - 1
        # All survivors present exactly once.
        survivors = np.flatnonzero(np.arange(tree.n) != relay)
        assert np.array_equal(np.sort(index_map[survivors]), np.arange(tree.n - 1))

    def test_degree2_budget_respected_after_repair(self):
        tree = build(degree=2, seed=31)
        degrees = tree.out_degrees()
        relay = int(np.flatnonzero((degrees == 2) & (np.arange(tree.n) != 0))[0])
        new_tree, _ = repair_after_failure(tree, relay, 2)
        new_tree.validate(max_out_degree=2)

    def test_root_failure_rejected(self):
        tree = build()
        with pytest.raises(ValueError, match="source"):
            repair_after_failure(tree, tree.root, 6)

    def test_out_of_range_rejected(self):
        tree = build()
        with pytest.raises(ValueError, match="range"):
            repair_after_failure(tree, tree.n + 5, 6)

    def test_radius_does_not_explode(self):
        tree = build(seed=32)
        degrees = tree.out_degrees()
        relay = int(np.flatnonzero((degrees > 2) & (np.arange(tree.n) != 0))[0])
        new_tree, _ = repair_after_failure(tree, relay, 6)
        assert new_tree.radius() <= tree.radius() * 2.0

    def test_no_spare_capacity_raises(self):
        # A 3-node chain with degree 1: killing the middle node leaves
        # the root saturated? No — the root's slot frees (its child
        # died), so repair succeeds. Force failure with degree budgets
        # that are already violated-by-construction instead:
        points = np.zeros((4, 2))
        points[:, 0] = [0, 1, 2, 3]
        parent = np.array([0, 0, 1, 1])  # root->1, 1->{2,3}
        tree = MulticastTree(points, parent, 0)
        # Budgets: root 1, everyone else 0. Node 1 dies; orphans 2 and 3
        # need homes but only the root has a (single) freed slot.
        budgets = np.array([1, 2, 0, 0])
        with pytest.raises(ValueError, match="spare fan-out"):
            repair_after_failure(tree, 1, budgets)

    def test_two_sequential_failures(self):
        tree = build(seed=33)
        relay = int(
            np.flatnonzero((tree.out_degrees() > 0) & (np.arange(tree.n) != 0))[0]
        )
        tree2, _ = repair_after_failure(tree, relay, 6)
        relay2 = int(
            np.flatnonzero(
                (tree2.out_degrees() > 0) & (np.arange(tree2.n) != tree2.root)
            )[0]
        )
        tree3, _ = repair_after_failure(tree2, relay2, 6)
        tree3.validate(max_out_degree=6)
        assert tree3.n == tree.n - 2

    def test_mutual_adoption_cycle_regression(self):
        """Two orphan subtrees must not adopt into each other.

        Regression: orphans A and B of the same failed node each found
        their cheapest attachment point inside the *other's* (still
        detached) subtree, producing a cycle. Geometry below makes the
        cross-subtree nodes the cheapest candidates by far while the
        root is saturated.
        """
        #       r ── f ── A ── a2        (a2 placed right next to B)
        #        \       └ B ── b2       (b2 placed right next to A)
        #         c
        points = np.array(
            [
                [0.0, 0.0],  # 0 root
                [1.0, 0.0],  # 1 f (fails)
                [1.0, 0.1],  # 2 A
                [1.0, -0.1],  # 3 B
                [1.0, -0.12],  # 4 a2 (child of A, hugging B)
                [1.0, 0.12],  # 5 b2 (child of B, hugging A)
                [0.0, 1.0],  # 6 c (root's other child, far away)
            ]
        )
        parent = np.array([0, 0, 1, 1, 2, 3, 0])
        tree = MulticastTree(points, parent, 0)
        budgets = np.array([2, 2, 2, 2, 2, 2, 2])
        budgets[0] = 2  # root: children f and c -> saturated after -1+...
        # After f fails the root frees one slot; saturate it out so the
        # cheap candidates really are the cross-subtree nodes:
        budgets[0] = 1
        new_tree, _ = repair_after_failure(tree, 1, budgets)
        new_tree.validate()  # pre-fix: TreeInvariantError (cycle)

    def test_orphan_subtree_stays_intact(self):
        """Only the orphan's uplink changes; its internal edges survive."""
        tree = build(seed=34)
        degrees = tree.out_degrees()
        relay = int(np.flatnonzero((degrees > 1) & (np.arange(tree.n) != 0))[0])
        orphans = np.flatnonzero(tree.parent == relay)
        orphan = int(orphans[0])
        subtree_before = set(tree.subtree_nodes(orphan).tolist())

        new_tree, index_map = repair_after_failure(tree, relay, 6)
        mapped = {int(index_map[x]) for x in subtree_before}
        subtree_after = set(
            new_tree.subtree_nodes(int(index_map[orphan])).tolist()
        )
        assert mapped == subtree_after
