"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads.generators import (
    annulus_points,
    as_rng,
    clustered_disk,
    nonuniform_disk,
    polygon_points,
    rectangle_points,
    unit_ball,
    unit_disk,
)


class TestCommonContract:
    GENERATORS = [
        lambda n, s: unit_disk(n, seed=s),
        lambda n, s: unit_ball(n, dim=3, seed=s),
        lambda n, s: annulus_points(n, seed=s),
        lambda n, s: rectangle_points(n, seed=s),
        lambda n, s: polygon_points(n, [(0, 0), (2, 0), (1, 2)], seed=s),
        lambda n, s: clustered_disk(n, seed=s),
        lambda n, s: nonuniform_disk(n, seed=s),
    ]

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_shape_and_reproducibility(self, gen):
        a = gen(101, 7)
        b = gen(101, 7)
        c = gen(101, 8)
        assert a.shape[0] == 101
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_minimum_one_node(self, gen):
        assert gen(1, 0).shape[0] == 1

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_zero_nodes_rejected(self, gen):
        with pytest.raises(ValueError):
            gen(0, 0)


class TestSpecifics:
    def test_unit_disk_source_at_center(self):
        pts = unit_disk(50, seed=1)
        assert np.allclose(pts[0], 0.0)
        assert np.all(np.linalg.norm(pts[1:], axis=1) <= 1.0)

    def test_unit_ball_dims(self):
        assert unit_ball(10, dim=4, seed=1).shape == (10, 4)

    def test_annulus_hole_is_empty(self):
        pts = annulus_points(500, r_inner=0.5, seed=2)
        rho = np.linalg.norm(pts[1:], axis=1)
        assert rho.min() > 0.5

    def test_rectangle_custom_source(self):
        pts = rectangle_points(20, source=(0.1, 0.2), seed=3)
        assert np.allclose(pts[0], [0.1, 0.2])

    def test_polygon_source_defaults_to_centroid(self):
        verts = [(0, 0), (3, 0), (0, 3)]
        pts = polygon_points(10, verts, seed=4)
        assert np.allclose(pts[0], [1.0, 1.0])

    def test_clustered_stays_in_disk(self):
        pts = clustered_disk(800, seed=5)
        assert np.all(np.linalg.norm(pts[1:], axis=1) <= 1.0 + 1e-12)

    def test_clustered_background_fraction_validated(self):
        with pytest.raises(ValueError, match="background"):
            clustered_disk(10, background=1.5, seed=0)

    def test_nonuniform_tilt_shifts_mass(self):
        pts = nonuniform_disk(20_000, tilt=0.9, seed=6)
        # Density 1 + 0.9x: the mean x must be clearly positive.
        assert pts[1:, 0].mean() > 0.1

    def test_nonuniform_tilt_validated(self):
        with pytest.raises(ValueError, match="tilt"):
            nonuniform_disk(10, tilt=1.0, seed=0)

    def test_as_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng
        assert isinstance(as_rng(5), np.random.Generator)
