"""The seed-corpus fuzzing harness: determinism, exit codes, artifacts."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.testing import EXIT_CLEAN, EXIT_CRASH
from repro.testing.fuzz import (
    check_churn_instance,
    churn_instance_from_seed,
    instance_from_seed,
    run_fuzz,
    shrink_churn_instance,
    shrink_instance,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestSeedCorpus:
    def test_instances_are_reproducible(self):
        a = instance_from_seed(42, 7)
        b = instance_from_seed(42, 7)
        assert np.array_equal(a.points, b.points)
        assert (a.source, a.d_max, a.kind) == (b.source, b.d_max, b.kind)

    def test_instances_are_independent_of_iteration_order(self):
        # Entry 7 materialised in isolation equals entry 7 of a sweep —
        # no loop state leaks into the stream.
        sweep = [instance_from_seed(42, i) for i in range(8)]
        assert np.array_equal(sweep[7].points, instance_from_seed(42, 7).points)

    def test_distinct_entries_differ(self):
        a = instance_from_seed(42, 0)
        b = instance_from_seed(42, 1)
        c = instance_from_seed(43, 0)
        assert a.points.shape != b.points.shape or not np.array_equal(
            a.points, b.points
        )
        assert a.points.shape != c.points.shape or not np.array_equal(
            a.points, c.points
        )

    def test_description_mentions_the_coordinates_of_reproduction(self):
        inst = instance_from_seed(9, 3)
        assert "base_seed=9" in inst.description
        assert "index=3" in inst.description


class TestCleanRun:
    def test_clean_run_exits_zero_and_writes_nothing(self, tmp_path):
        out = tmp_path / "fuzz"
        lines = []
        code = run_fuzz(
            8, base_seed=0, out_dir=str(out), report_every=4, log=lines.append
        )
        assert code == EXIT_CLEAN
        assert not out.exists()  # artifacts only on violation
        assert any("clean" in line for line in lines)

    def test_budget_truncates_but_stays_clean(self, tmp_path):
        code = run_fuzz(
            10_000, budget=0.0, out_dir=str(tmp_path / "f"), log=lambda *_: None
        )
        assert code == EXIT_CLEAN
        assert not (tmp_path / "f").exists()


class TestCrashPath:
    @pytest.fixture()
    def broken_builder(self):
        """Degree-cap mutation injected into the registry's polar-grid
        entry (the harness dispatches through repro.build)."""
        from repro.core.registry import get_builder, register_builder

        original = get_builder("polar-grid")
        real = original.fn

        def evil(points, source=0, max_out_degree=6):
            d_max = max_out_degree
            result = real(points, source, d_max)
            parent = result.tree.parent
            n = parent.shape[0]
            if n < 6:
                return result
            degrees = np.bincount(parent, minlength=n)
            degrees[source] -= 1
            hub = int(np.argmax(degrees))
            leaves = np.flatnonzero(
                np.isin(np.arange(n), parent, invert=True)
                & (np.arange(n) != hub)
            )
            for victim in leaves[: d_max + 2]:
                parent[victim] = hub
            for cache in ("_root_delays", "_depths", "_edge_lengths"):
                setattr(result.tree, cache, None)
            return result

        register_builder("polar-grid", summary=original.summary)(evil)
        yield
        register_builder("polar-grid", summary=original.summary)(real)

    def test_crash_produces_artifact_and_exit_code(
        self, tmp_path, broken_builder
    ):
        out = tmp_path / "fuzz"
        lines = []
        code = run_fuzz(
            30,
            base_seed=1,
            out_dir=str(out),
            max_crashes=1,
            log=lines.append,
        )
        assert code == EXIT_CRASH
        artifacts = sorted(out.glob("crash-*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["violations"], "artifact must carry the violations"
        assert {"DEGREE_CAP"} <= {v["code"] for v in payload["violations"]}
        # The artifact is a self-contained reproducer.
        n = len(payload["points"])
        assert payload["description"].startswith("base_seed=1")
        assert "instance_from_seed(1," in payload["reproduce"]
        # Shrinking reduced the instance and kept it failing.
        assert 2 <= payload["shrunk"]["n"] <= n
        assert payload["shrunk"]["violations"]
        assert len(payload["shrunk"]["points"]) == payload["shrunk"]["n"]
        assert any("FUZZ FAILURE" in line for line in lines)

    def test_shrink_preserves_failure(self, broken_builder):
        inst = next(
            instance_from_seed(1, i)
            for i in range(50)
            if instance_from_seed(1, i).points.shape[0] >= 40
        )
        shrunk, source, violations = shrink_instance(
            inst.points, inst.source, inst.d_max, max_checks=30
        )
        assert violations, "shrinking must keep the instance failing"
        assert shrunk.shape[0] <= inst.points.shape[0]
        assert 0 <= source < shrunk.shape[0]
        # The shrunk source is the same physical point.
        assert np.array_equal(shrunk[source], inst.points[inst.source])


class TestEntryPoints:
    def test_cli_subcommand_dispatch(self, tmp_path):
        from repro.cli import main

        code = main(
            ["fuzz", "--seeds", "3", "--out", str(tmp_path / "f"), "--seed", "5"]
        )
        assert code == EXIT_CLEAN

    @pytest.mark.slow
    def test_tools_shim_forwards_and_exits_clean(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "fuzz.py"),
                "--seeds",
                "3",
                "--out",
                str(tmp_path / "f"),
            ],
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == EXIT_CLEAN, proc.stderr


class TestChurnCorpus:
    def test_churn_instances_are_reproducible(self):
        a = churn_instance_from_seed(42, 7)
        b = churn_instance_from_seed(42, 7)
        assert a == b
        assert a.events and a.bootstrap == 8

    def test_distinct_churn_entries_differ(self):
        assert (
            churn_instance_from_seed(0, 1).events
            != churn_instance_from_seed(0, 2).events
        )

    def test_churn_corpus_disjoint_from_builder_corpus(self):
        # The third seed component tags the stream: a builder instance
        # and a churn instance of the same (base_seed, index) must not
        # be derived from the same raw draws.
        builder = instance_from_seed(0, 0)
        churn = churn_instance_from_seed(0, 0)
        first_join = next(
            e for e in churn.events if e["action"] == "join" and e["coords"]
        )
        assert not np.allclose(
            builder.points[1][: len(first_join["coords"])],
            first_join["coords"],
        )

    def test_infeasible_events_are_skipped_not_flagged(self):
        events = [
            {"action": "join", "name": "a", "coords": [0.5, 0.1]},
            {"action": "leave", "name": "ghost"},  # never joined
            {"action": "join", "name": "a", "coords": [0.2, 0.2]},  # dup name
            {"action": "leave", "name": "a"},
            {"action": "leave", "name": "a"},  # already gone
        ]
        assert check_churn_instance(events, 2, 6) == []

    def test_clean_churn_run_writes_nothing(self, tmp_path):
        out = tmp_path / "churn"
        lines = []
        code = run_fuzz(
            4,
            base_seed=0,
            out_dir=str(out),
            mode="churn",
            report_every=2,
            log=lines.append,
        )
        assert code == EXIT_CLEAN
        assert not out.exists()
        assert any("clean" in line for line in lines)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_fuzz(1, mode="bogus")


class TestChurnCrashPath:
    @pytest.fixture()
    def tightened_drift_bound(self, monkeypatch):
        """Force every post-bootstrap event over the delay-drift bound.

        The checker (and the engine's refit trigger) read the bound from
        the incremental module at call time; 0.5 makes even an exact
        from-scratch tree a violation, so every trace fails as soon as
        the engine bootstraps — a deterministic crash injection.
        """
        import repro.overlay.incremental as incremental

        monkeypatch.setattr(incremental, "DELAY_DRIFT_BOUND", 0.5)

    def test_churn_crash_produces_artifact(
        self, tmp_path, tightened_drift_bound
    ):
        out = tmp_path / "churn"
        lines = []
        code = run_fuzz(
            3,
            base_seed=0,
            out_dir=str(out),
            mode="churn",
            max_crashes=1,
            log=lines.append,
        )
        assert code == EXIT_CRASH
        artifacts = sorted(out.glob("crash-churn-*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["violations"]
        assert {"DELAY_DRIFT"} <= {v["code"] for v in payload["violations"]}
        assert payload["events"], "artifact carries the full trace"
        assert "churn_instance_from_seed(0," in payload["reproduce"]
        # Shrinking truncated to the failing prefix and kept it failing.
        assert 1 <= len(payload["shrunk"]["events"]) <= len(payload["events"])
        assert payload["shrunk"]["violations"]
        assert any("FUZZ FAILURE" in line for line in lines)

    def test_churn_shrinker_minimises_and_preserves_failure(
        self, tightened_drift_bound
    ):
        inst = churn_instance_from_seed(0, 0)
        shrunk, violations = shrink_churn_instance(
            inst.events, inst.dim, inst.d_max, inst.bootstrap, max_checks=40
        )
        assert violations, "shrinking must keep the trace failing"
        assert len(shrunk) < len(inst.events)
        # The minimised trace is a genuine reproducer on its own.
        again = check_churn_instance(shrunk, inst.dim, inst.d_max, inst.bootstrap)
        assert again
        first_failure = min(v["event"] for v in again)
        assert first_failure == len(shrunk) - 1, "last event is the failure"
