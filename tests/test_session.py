"""Tests for MulticastSession (the user-facing overlay orchestration)."""

import numpy as np
import pytest

from repro.overlay.host import Host
from repro.overlay.session import ALGORITHMS, MulticastSession
from repro.workloads.generators import unit_disk


def make_hosts(n=60, fanout=6, seed=40, dim=2):
    points = unit_disk(n, seed=seed) if dim == 2 else None
    return [
        Host(
            name=f"h{i}" if i else "src",
            coords=tuple(points[i]),
            max_fanout=fanout,
        )
        for i in range(n)
    ]


class TestConstruction:
    def test_source_by_name(self):
        session = MulticastSession(make_hosts(), source="src")
        assert session.source_index == 0

    def test_source_by_index(self):
        session = MulticastSession(make_hosts(), source=3)
        assert session.source.name == "h3"

    def test_unknown_source_name(self):
        with pytest.raises(ValueError, match="unknown source"):
            MulticastSession(make_hosts(), source="nope")

    def test_duplicate_names_rejected(self):
        hosts = make_hosts(5)
        hosts[2] = Host(name="src", coords=(0.1, 0.1))
        with pytest.raises(ValueError, match="unique"):
            MulticastSession(hosts)

    def test_mixed_dims_rejected(self):
        hosts = make_hosts(3)
        hosts[1] = Host(name="weird", coords=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="coordinate space"):
            MulticastSession(hosts)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            MulticastSession(make_hosts(3), algorithm="magic")

    def test_empty_session_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            MulticastSession([])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestAllAlgorithms:
    def test_builds_valid_tree(self, algorithm):
        session = MulticastSession(make_hosts(80), algorithm=algorithm)
        tree = session.build(seed=1)
        tree.validate(max_out_degree=6)
        assert tree.n == 80

    def test_metrics_radius_matches_tree(self, algorithm):
        session = MulticastSession(make_hosts(50), algorithm=algorithm)
        session.build(seed=1)
        assert session.metrics().radius == pytest.approx(session.tree.radius())


class TestSessionBehaviour:
    def test_requires_build_before_metrics(self):
        session = MulticastSession(make_hosts(5))
        with pytest.raises(RuntimeError, match="build"):
            session.metrics()

    def test_parent_of(self):
        session = MulticastSession(make_hosts(30))
        session.build()
        assert session.parent_of("src") is None
        parent = session.parent_of("h7")
        assert parent in {h.name for h in session.hosts}

    def test_low_fanout_falls_back_to_heterogeneous(self):
        """polar-grid with leaf-only hosts routes through the mixed-
        budget backbone builder and still honours every budget."""
        hosts = make_hosts(30)
        hosts[4] = Host(name="h4", coords=hosts[4].coords, max_fanout=1)
        hosts[9] = Host(name="h9", coords=hosts[9].coords, max_fanout=0)
        session = MulticastSession(hosts, algorithm="polar-grid")
        tree = session.build()
        degrees = tree.out_degrees()
        assert degrees[4] <= 1
        assert degrees[9] == 0
        assert np.all(degrees <= session.fanout_budgets())

    def test_low_fanout_blocks_bisection(self):
        hosts = make_hosts(10)
        hosts[4] = Host(name="h4", coords=hosts[4].coords, max_fanout=1)
        session = MulticastSession(hosts, algorithm="bisection")
        with pytest.raises(ValueError, match="fan-out >= 2"):
            session.build()

    def test_heterogeneous_budgets_with_compact_tree(self):
        points = unit_disk(40, seed=41)
        hosts = [
            Host(
                name=f"h{i}" if i else "src",
                coords=tuple(points[i]),
                max_fanout=(0 if i % 3 == 0 and i else 4),
            )
            for i in range(40)
        ]
        session = MulticastSession(hosts, algorithm="compact-tree")
        tree = session.build()
        degrees = tree.out_degrees()
        budgets = session.fanout_budgets()
        assert np.all(degrees <= budgets)

    def test_simulate_uses_processing_delays(self):
        points = unit_disk(30, seed=42)
        hosts = [
            Host(
                name=f"h{i}" if i else "src",
                coords=tuple(points[i]),
                max_fanout=6,
                processing_delay=0.1,
            )
            for i in range(30)
        ]
        session = MulticastSession(hosts)
        session.build()
        replay = session.simulate()
        # Every non-direct receiver pays at least one processing hop.
        assert replay.completion_time > session.tree.radius()

    def test_departure_updates_everything(self):
        session = MulticastSession(make_hosts(40))
        session.build()
        victim = "h11"
        n_before = session.n
        session.handle_departure(victim)
        assert session.n == n_before - 1
        assert victim not in {h.name for h in session.hosts}
        session.tree.validate(max_out_degree=6)
        # Metrics and simulation still work post-repair.
        session.metrics()
        session.simulate()

    def test_departure_of_unknown_host(self):
        session = MulticastSession(make_hosts(5))
        session.build()
        with pytest.raises(ValueError, match="unknown host"):
            session.handle_departure("ghost")

    def test_source_departure_rejected(self):
        session = MulticastSession(make_hosts(5))
        session.build()
        with pytest.raises(ValueError, match="source"):
            session.handle_departure("src")

    def test_rebuild_after_departure(self):
        session = MulticastSession(make_hosts(40))
        session.build()
        session.handle_departure("h5")
        tree = session.build()  # full rebuild on the survivors
        tree.validate(max_out_degree=6)
        assert tree.n == 39
