"""Cross-module integration tests: full pipelines, example smoke runs."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import (
    MulticastSession,
    MulticastTree,
    build,
    unit_ball,
    unit_disk,
)
from repro.overlay.host import Host

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_canonical_flow(self):
        """The README's quickstart, as a test."""
        points = unit_disk(2000, seed=1)
        result = build(points, source=0, spec="polar-grid", max_out_degree=6)
        tree = result.tree.validate(max_out_degree=6)
        assert isinstance(tree, MulticastTree)
        assert 1.0 <= result.radius <= result.upper_bound


class TestAlgorithmsAgree:
    def test_polar_grid_beats_bisection_at_scale(self):
        """The hierarchical algorithm dominates its own subroutine on
        disk inputs — the reason Section III exists."""
        points = unit_disk(20_000, seed=2)
        grid = build(points, 0, "polar-grid", max_out_degree=6).radius
        bisect = build(points, 0, "bisection", max_out_degree=4).radius
        assert grid < bisect

    def test_all_algorithms_same_node_set(self):
        points = unit_disk(300, seed=3)
        hosts = [
            Host(name=str(i), coords=tuple(points[i]), max_fanout=6)
            for i in range(300)
        ]
        for algorithm in ("polar-grid", "bisection", "compact-tree"):
            session = MulticastSession(hosts, source="0", algorithm=algorithm)
            tree = session.build()
            assert tree.n == 300
            tree.validate(max_out_degree=6)

    def test_simulator_is_universal_oracle(self):
        """Every builder's tree replays to exactly its analytic delays."""
        from repro.overlay.simulator import simulate_dissemination

        points = unit_disk(400, seed=4)
        for tree in (
            build(points, 0, "polar-grid", max_out_degree=6).tree,
            build(points, 0, "polar-grid", max_out_degree=2).tree,
            build(points, 0, "bisection", max_out_degree=4).tree,
            build(points, 0, "compact-tree", max_out_degree=6).tree,
        ):
            replay = simulate_dissemination(tree)
            assert np.allclose(replay.receive_time, tree.root_delays())


class TestLifecycle:
    def test_build_simulate_fail_repair_rebuild(self):
        points = unit_disk(500, seed=5)
        hosts = [
            Host(
                name=f"n{i}",
                coords=tuple(points[i]),
                max_fanout=4,
                processing_delay=0.001,
            )
            for i in range(500)
        ]
        session = MulticastSession(hosts, source="n0", algorithm="polar-grid")
        session.build()
        before = session.simulate()

        # Three random relays churn out, one at a time.
        rng = np.random.default_rng(6)
        for _ in range(3):
            degrees = session.tree.out_degrees()
            relays = np.flatnonzero(
                (degrees > 0) & (np.arange(session.n) != session.source_index)
            )
            victim = session.hosts[int(rng.choice(relays))].name
            session.handle_departure(victim)
            # The build used the binary variant (fanout 4 < 6), but the
            # repair may legitimately use each host's full budget of 4.
            session.tree.validate(max_out_degree=4)

        after = session.simulate()
        assert after.receive_time.shape[0] == 497
        assert np.isfinite(after.completion_time)
        assert before.completion_time > 0


class TestDimensionalBehaviour:
    def test_3d_delay_above_2d_delay(self):
        """Section V's Figure 8 observation: at equal n, 3-D delays are
        higher than 2-D delays."""
        n = 5000
        d2 = build(unit_disk(n, seed=7), 0, "polar-grid", max_out_degree=6).radius
        d3 = build(
            unit_ball(n, dim=3, seed=7), 0, "polar-grid", max_out_degree=10
        ).radius
        assert d3 > d2


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "convex_region_anycast.py", "webinar_churn.py"],
)
def test_examples_run(script, monkeypatch, capsys):
    """Examples must stay runnable (shrunk via argv where supported)."""
    monkeypatch.setattr(sys, "argv", [script, "500"])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()
