"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic RNG; tests that need more streams derive seeds."""
    return np.random.default_rng(12345)


@pytest.fixture
def disk_points(rng):
    """500 nodes in the unit disk, source at the centre (row 0)."""
    from repro.workloads.generators import unit_disk

    return unit_disk(500, seed=rng.integers(1 << 30))


@pytest.fixture
def small_disk_points():
    """50 nodes, fixed seed — cheap enough for exhaustive checks."""
    from repro.workloads.generators import unit_disk

    return unit_disk(50, seed=99)


def reference_root_delays(points: np.ndarray, parent: np.ndarray, root: int):
    """O(n * depth) parent-chasing oracle for root delays."""
    n = points.shape[0]
    delays = np.zeros(n)
    for node in range(n):
        total = 0.0
        walk = node
        hops = 0
        while walk != root:
            p = int(parent[walk])
            total += float(np.linalg.norm(points[walk] - points[p]))
            walk = p
            hops += 1
            assert hops <= n, "cycle in reference walk"
        delays[node] = total
    return delays


@pytest.fixture
def delay_oracle():
    return reference_root_delays
