"""Tests for repro.obs: spans, metrics, capture/merge, exporters, CLI."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, SpanRecord, TraceCollector

DATA_DIR = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with observability disabled and empty."""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# spans


class TestSpans:
    def test_nesting_assigns_parents(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        records = {r.name: r for r in obs.current_records()}
        assert records["outer"].parent_id is None
        assert records["middle"].parent_id == records["outer"].span_id
        assert records["inner"].parent_id == records["middle"].span_id
        assert records["sibling"].parent_id == records["outer"].span_id

    def test_timing_is_monotonic_and_contains_children(self):
        obs.enable()
        with obs.span("parent"):
            with obs.span("child"):
                sum(range(10_000))
        by_name = {r.name: r for r in obs.current_records()}
        parent, child = by_name["parent"], by_name["child"]
        assert parent.duration > 0
        assert child.duration > 0
        assert parent.duration >= child.duration
        assert child.start >= parent.start

    def test_attrs_at_entry_and_via_set(self):
        obs.enable()
        with obs.span("build", n=100) as sp:
            sp.set(rings=4)
        (record,) = obs.current_records()
        assert record.attrs == {"n": 100, "rings": 4}

    def test_exception_still_closes_span(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (record,) = obs.current_records()
        assert record.name == "doomed"
        assert record.duration >= 0
        # the stack unwound: a new span is a root again
        with obs.span("after"):
            pass
        assert obs.current_records()[-1].parent_id is None

    def test_span_record_roundtrip(self):
        record = SpanRecord(7, 3, "x", 0.5, 0.25, {"k": "v"})
        assert SpanRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# disabled mode


class TestDisabledMode:
    def test_span_returns_shared_noop(self):
        assert obs.span("anything", n=1) is NOOP_SPAN
        assert obs.span("other") is NOOP_SPAN
        with obs.span("nested"):
            with obs.span("inner"):
                pass
        assert obs.current_records() == []

    def test_metrics_are_dropped(self):
        obs.add("c.total")
        obs.observe("h.seconds", 1.0)
        obs.set_gauge("g", 3.0)
        assert obs.snapshot() == {}

    def test_instrumented_build_records_nothing(self):
        from repro.core.builder import build_polar_grid_tree
        from repro.workloads.generators import unit_disk

        build_polar_grid_tree(unit_disk(100, seed=0), 0, 6)
        assert obs.current_records() == []
        assert obs.snapshot() == {}

    def test_noop_span_set_chains(self):
        assert NOOP_SPAN.set(a=1) is NOOP_SPAN


# ----------------------------------------------------------------------
# metrics registry + merge


class TestRegistryMerge:
    def test_counters_add_gauges_overwrite(self):
        workers = []
        for w in range(3):
            reg = MetricsRegistry()
            reg.counter("trials").inc(4)
            reg.gauge("last_seed").set(w)
            workers.append(reg.snapshot())
        merged = MetricsRegistry()
        for snap in workers:
            merged.merge(snap)
        assert merged.counter("trials").value == 12
        assert merged.gauge("last_seed").value == 2

    def test_histograms_merge_counts_sums_extremes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.002, 0.2):
            a.histogram("secs").observe(v)
        for v in (0.02, 7.0):
            b.histogram("secs").observe(v)
        a.merge(b.snapshot())
        h = a.histogram("secs")
        assert h.count == 4
        assert math.isclose(h.sum, 7.222)
        assert h.min == 0.002
        assert h.max == 7.0
        assert sum(h.bucket_counts) == 4

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_bucket_layout_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h").observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b.snapshot())

    def test_snapshot_is_json_serialisable(self):
        obs.enable()
        obs.add("c")
        obs.observe("h", 0.5)
        obs.set_gauge("g", 1.0)
        json.dumps(obs.snapshot())


# ----------------------------------------------------------------------
# capture / absorb (the worker protocol)


class TestCaptureAbsorb:
    def test_capture_isolates_and_restores(self):
        obs.enable()
        obs.add("outer.counter")
        with obs.capture() as cap:
            obs.add("inner.counter", 5)
            with obs.span("inner.span"):
                pass
        # the capture took the inner observations...
        assert cap.metrics["inner.counter"]["value"] == 5
        assert [s["name"] for s in cap.spans] == ["inner.span"]
        # ...and the global state never saw them
        assert "inner.counter" not in obs.snapshot()
        assert obs.current_records() == []
        assert obs.snapshot()["outer.counter"]["value"] == 1

    def test_capture_enables_even_when_disabled(self):
        assert not obs.is_enabled()
        with obs.capture() as cap:
            assert obs.is_enabled()
            obs.add("w.counter")
        assert not obs.is_enabled()
        assert cap.metrics["w.counter"]["value"] == 1

    def test_absorb_grafts_spans_under_open_span(self):
        obs.enable()
        with obs.capture() as cap:
            with obs.span("trial"):
                with obs.span("build"):
                    pass
        with obs.span("sweep"):
            obs.absorb(cap.metrics, cap.spans)
        by_name = {r.name: r for r in obs.current_records()}
        assert by_name["trial"].parent_id == by_name["sweep"].span_id
        # internal parentage preserved through the id remap
        assert by_name["build"].parent_id == by_name["trial"].span_id

    def test_simulated_multi_worker_merge(self):
        # Three "workers" capture independently; the parent folds all in.
        captures = []
        for w in range(3):
            with obs.capture() as cap:
                obs.add("engine.trials.total", 2)
                obs.observe("engine.trial.seconds", 0.1 * (w + 1))
            captures.append(cap)
        obs.enable()
        for cap in captures:
            obs.absorb(cap.metrics, cap.spans)
        snap = obs.snapshot()
        assert snap["engine.trials.total"]["value"] == 6
        assert snap["engine.trial.seconds"]["count"] == 3
        assert math.isclose(snap["engine.trial.seconds"]["sum"], 0.6)


# ----------------------------------------------------------------------
# engine integration


class TestEngineObservability:
    def test_serial_engine_merges_worker_metrics(self):
        from repro.experiments.runner import run_trials

        obs.enable()
        with obs.span("sweep"):
            records = run_trials(120, 6, 3, seed=0, engine="serial")
        assert len(records) == 3
        snap = obs.snapshot()
        assert snap["engine.trials.total"]["value"] == 3
        assert snap["engine.trial.seconds"]["count"] == 3
        trial_spans = [
            r for r in obs.current_records() if r.name == "engine.trial"
        ]
        assert len(trial_spans) == 3

    def test_process_pool_merges_every_workers_trials(self):
        from repro.experiments.parallel import ProcessExecutor, TrialTask

        obs.enable()
        tasks = [
            TrialTask(n=100, max_out_degree=6, dim=2, seed=s)
            for s in range(4)
        ]
        with obs.span("sweep"):
            with ProcessExecutor(max_workers=2) as ex:
                outcomes = ex.map(tasks)
        assert all(hasattr(o, "delay") for o in outcomes)
        snap = obs.snapshot()
        assert snap["engine.trials.total"]["value"] == 4
        assert snap["engine.trial.seconds"]["count"] == 4
        by_name = {}
        for r in obs.current_records():
            by_name.setdefault(r.name, []).append(r)
        assert len(by_name["engine.trial"]) == 4
        sweep = by_name["sweep"][0]
        assert all(r.parent_id == sweep.span_id for r in by_name["engine.trial"])

    def test_disabled_engine_stays_silent(self):
        from repro.experiments.runner import run_trials

        records = run_trials(100, 6, 2, seed=0, engine="serial")
        assert len(records) == 2
        assert obs.snapshot() == {}
        assert obs.current_records() == []

    def test_records_identical_with_and_without_observability(self):
        from repro.experiments.runner import run_trials

        baseline = run_trials(150, 2, 3, seed=5, engine="serial")
        obs.enable()
        observed = run_trials(150, 2, 3, seed=5, engine="serial")
        for a, b in zip(baseline, observed):
            assert (a.n, a.rings, a.core_delay, a.delay, a.bound) == (
                b.n,
                b.rings,
                b.core_delay,
                b.delay,
                b.bound,
            )


# ----------------------------------------------------------------------
# overlay + fuzz counters


class TestDomainCounters:
    def test_repair_counts_orphans(self):
        import numpy as np

        from repro.core.builder import build_polar_grid_tree
        from repro.overlay.repair import repair_after_failure
        from repro.workloads.generators import unit_disk

        tree = build_polar_grid_tree(unit_disk(60, seed=3), 0, 2).tree
        victim = int(np.flatnonzero(tree.out_degrees() > 0)[-1])
        obs.enable()
        repair_after_failure(tree, victim, 2, validate=True)
        snap = obs.snapshot()
        assert snap["overlay.repairs.total"]["value"] == 1
        assert snap["overlay.orphan_subtree_nodes"]["count"] == 1
        assert snap["overlay.validation.seconds"]["count"] == 1
        names = [r.name for r in obs.current_records()]
        assert "overlay.repair" in names

    def test_dynamic_overlay_counts_membership_events(self):
        from repro.overlay.dynamic import DynamicOverlay

        obs.enable()
        overlay = DynamicOverlay((0.0, 0.0), max_out_degree=4,
                                 rebuild_threshold=None)
        for i in range(6):
            overlay.join(f"m{i}", (0.1 * (i + 1), 0.2))
        overlay.leave("m2")
        overlay.rebuild()
        snap = obs.snapshot()
        assert snap["overlay.joins.total"]["value"] == 6
        assert snap["overlay.leaves.total"]["value"] == 1
        assert snap["overlay.rebuilds.total"]["value"] == 1

    def test_fuzz_counts_execs(self, tmp_path):
        from repro.testing.fuzz import run_fuzz

        obs.enable()
        code = run_fuzz(
            seeds=3, out_dir=str(tmp_path), log=lambda *a, **k: None
        )
        assert code == 0
        snap = obs.snapshot()
        assert snap["fuzz.execs.total"]["value"] == 3
        assert snap["fuzz.execs_per_sec"]["value"] > 0


# ----------------------------------------------------------------------
# exporters (golden files)


def _golden_records():
    return [
        SpanRecord(3, 2, "polar_grid.cell_layout", 0.001, 0.0625,
                   {"n": 1000, "rings": 6}),
        SpanRecord(4, 2, "polar_grid.wire_cells", 0.064, 0.125,
                   {"cells": 127}),
        SpanRecord(2, 1, "polar_grid.build", 0.0, 0.25, {"n": 1000}),
        SpanRecord(1, None, "cli.table1", 0.0, 0.5, {}),
    ]


def _golden_snapshot():
    reg = MetricsRegistry()
    reg.counter("engine.trials.total").inc(8)
    reg.gauge("fuzz.execs_per_sec").set(12.5)
    h = reg.histogram("engine.trial.seconds", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 0.5):
        h.observe(v)
    return reg.snapshot()


class TestExporters:
    def test_span_tree_matches_golden(self):
        rendered = obs.format_span_tree(_golden_records())
        golden = (DATA_DIR / "golden_span_tree.txt").read_text().rstrip("\n")
        assert rendered == golden

    def test_prometheus_matches_golden(self):
        rendered = obs.prometheus_text(_golden_snapshot())
        golden = (DATA_DIR / "golden_prometheus.txt").read_text().rstrip("\n")
        assert rendered == golden

    def test_jsonl_roundtrip_with_metrics(self, tmp_path):
        path = tmp_path / "trace" / "t.jsonl"
        obs.write_trace_jsonl(
            _golden_records(), path, metrics=_golden_snapshot()
        )
        spans, metrics = obs.read_trace_jsonl(path)
        assert spans == _golden_records()
        assert metrics == _golden_snapshot()

    def test_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            obs.read_trace_jsonl(path)

    def test_summarize_records_covers_spans_and_metrics(self):
        text = obs.summarize_records(_golden_records(), _golden_snapshot())
        assert "4 spans" in text
        assert "cli.table1" in text
        assert "repro_engine_trials_total 8" in text

    def test_summarize_empty(self):
        assert "empty" in obs.summarize_records([])


# ----------------------------------------------------------------------
# CLI


class TestCli:
    def test_table1_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "out.jsonl"
        code = main(
            [
                "table1",
                "--sizes", "80",
                "--trials", "2",
                "--engine", "process",
                "--trace", str(trace),
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # merged snapshot covers every worker's trials: 1 size x 2 degrees
        # x 2 trials
        assert "repro_engine_trials_total 4" in out
        assert "repro_build_polar_grid_total 4" in out
        spans, metrics = obs.read_trace_jsonl(trace)
        assert metrics["engine.trials.total"]["value"] == 4
        names = [s.name for s in spans]
        assert names.count("engine.trial") == 4
        assert "cli.table1" in names
        # CLI state is torn down afterwards
        assert not obs.is_enabled()
        assert obs.current_records() == []

    def test_trace_report_command(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        obs.write_trace_jsonl(
            _golden_records(), trace, metrics=_golden_snapshot()
        )
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "4 spans" in out
        assert "per-name totals" in out
        assert "repro_engine_trials_total 8" in out

    def test_demo_without_flags_records_nothing(self, capsys):
        from repro.cli import main

        assert main(["demo", "--nodes", "50"]) == 0
        assert obs.current_records() == []
        assert "repro_" not in capsys.readouterr().out
