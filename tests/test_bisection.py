"""Tests for the Section II bisection algorithm (all variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisection import (
    bisection_tree_2d,
    bisection_tree_nd,
    bounding_segment_far_center,
)
from repro.core.bounds import bisection_path_bound
from repro.core.builder import build_bisection_tree
from repro.core.tree import MulticastTree
from repro.geometry.polar import TWO_PI, to_polar


def run_2d(points, source, segment_center, r_range, t_range, degree):
    """Helper: run the in-cell 2-D bisection and return a validated tree."""
    n = points.shape[0]
    rho, theta = to_polar(points, segment_center)
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    indices = [i for i in range(n) if i != source]
    bisection_tree_2d(
        rho.tolist(),
        (theta / TWO_PI).tolist(),
        indices,
        source,
        r_range,
        t_range,
        parent,
        degree,
    )
    return MulticastTree(points=points, parent=parent, root=source)


def segment_points(rng, n, r_range, t_range, center=(0.0, 0.0)):
    """Uniform points in a ring segment around `center`."""
    r = np.sqrt(rng.uniform(r_range[0] ** 2, r_range[1] ** 2, n))
    theta = rng.uniform(t_range[0], t_range[1], n) * TWO_PI
    pts = np.stack(
        [center[0] + r * np.cos(theta), center[1] + r * np.sin(theta)], axis=1
    )
    return pts


class TestDegree4:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 200])
    def test_spanning_and_degree(self, rng, n):
        pts = segment_points(rng, n, (0.5, 1.0), (0.0, 0.25))
        tree = run_2d(pts, 0, (0.0, 0.0), (0.4999, 1.0), (0.0, 0.25), 4)
        tree.validate(max_out_degree=4)

    def test_path_bound_eq1(self, rng):
        """Equation (1): l_p <= max(R-q, q-r) + 2Ra for every path."""
        for trial in range(20):
            local = np.random.default_rng(trial)
            pts = segment_points(local, 80, (0.6, 1.0), (0.0, 0.15))
            tree = run_2d(pts, 0, (0.0, 0.0), (0.5999, 1.0), (0.0, 0.15), 4)
            q = float(np.linalg.norm(pts[0]))
            bound = bisection_path_bound(0.6, 1.0, 0.15 * TWO_PI, q, 4)
            assert tree.radius() <= bound + 1e-9

    def test_duplicate_points_terminate(self):
        pts = np.tile([[0.75, 0.1]], (30, 1))
        pts[0] = [0.7, 0.0]
        tree = run_2d(pts, 0, (0.0, 0.0), (0.5, 1.0), (0.0, 0.25), 4)
        tree.validate(max_out_degree=4)

    def test_single_receiver_attaches_to_source(self, rng):
        pts = segment_points(rng, 2, (0.5, 1.0), (0.0, 0.2))
        tree = run_2d(pts, 0, (0.0, 0.0), (0.49, 1.0), (0.0, 0.2), 4)
        assert tree.parent[1] == 0


class TestDegree2:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 10, 200])
    def test_spanning_and_degree(self, rng, n):
        pts = segment_points(rng, n, (0.5, 1.0), (0.0, 0.25))
        tree = run_2d(pts, 0, (0.0, 0.0), (0.4999, 1.0), (0.0, 0.25), 2)
        tree.validate(max_out_degree=2)

    def test_conservative_path_bound(self):
        """The conservative form of eq. (2) holds for every path."""
        for trial in range(20):
            local = np.random.default_rng(trial + 100)
            pts = segment_points(local, 60, (0.6, 1.0), (0.0, 0.15))
            tree = run_2d(pts, 0, (0.0, 0.0), (0.5999, 1.0), (0.0, 0.15), 2)
            q = float(np.linalg.norm(pts[0]))
            bound = bisection_path_bound(
                0.6, 1.0, 0.15 * TWO_PI, q, 2, conservative=True
            )
            assert tree.radius() <= bound + 1e-9

    def test_degree3_uses_binary_variant(self, rng):
        pts = segment_points(rng, 40, (0.5, 1.0), (0.0, 0.25))
        tree = run_2d(pts, 0, (0.0, 0.0), (0.4999, 1.0), (0.0, 0.25), 3)
        tree.validate(max_out_degree=2)  # relay variant never uses 3

    def test_duplicate_points_terminate(self):
        pts = np.tile([[0.75, 0.1]], (25, 1))
        pts[0] = [0.7, 0.0]
        tree = run_2d(pts, 0, (0.0, 0.0), (0.5, 1.0), (0.0, 0.25), 2)
        tree.validate(max_out_degree=2)

    def test_rejects_degree_below_2(self, rng):
        pts = segment_points(rng, 5, (0.5, 1.0), (0.0, 0.25))
        with pytest.raises(ValueError, match="at least 2"):
            run_2d(pts, 0, (0.0, 0.0), (0.4999, 1.0), (0.0, 0.25), 1)


class TestNdBisection:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    @pytest.mark.parametrize("mode_degree", ["full", "binary"])
    def test_spanning_and_degree(self, rng, dim, mode_degree):
        from repro.geometry.polar import SphericalTransform

        n = 120
        pts = rng.normal(size=(n, dim))
        tr = SphericalTransform(dim)
        rho, t = tr.transform(pts, np.zeros(dim))
        parent = np.full(n, -1, dtype=np.int64)
        parent[0] = 0
        degree = (1 << dim) if mode_degree == "full" else 2
        bisection_tree_nd(
            rho.tolist(),
            tuple(t[:, j].tolist() for j in range(dim - 1)),
            list(range(1, n)),
            0,
            (0.0, float(rho.max())),
            tuple((0.0, 1.0) for _ in range(dim - 1)),
            parent,
            degree,
        )
        tree = MulticastTree(points=pts, parent=parent, root=0)
        tree.validate(max_out_degree=degree)

    def test_binary_mode_cycles_axes(self, rng):
        """Out-degree 2 in 3-D: depth must stay logarithmic-ish, proving
        the splits actually separate points on every axis."""
        from repro.geometry.polar import SphericalTransform

        n = 500
        pts = rng.normal(size=(n, 3))
        tr = SphericalTransform(3)
        rho, t = tr.transform(pts, np.zeros(3))
        parent = np.full(n, -1, dtype=np.int64)
        parent[0] = 0
        bisection_tree_nd(
            rho.tolist(),
            (t[:, 0].tolist(), t[:, 1].tolist()),
            list(range(1, n)),
            0,
            (0.0, float(rho.max())),
            ((0.0, 1.0), (0.0, 1.0)),
            parent,
            2,
        )
        tree = MulticastTree(points=pts, parent=parent, root=0)
        tree.validate(max_out_degree=2)
        # A balanced binary tree of 500 nodes is ~9 deep; allow slack for
        # the geometric (not cardinality) splits.
        assert tree.depths().max() < 60


class TestFarCenterSegment:
    def test_covers_all_points(self, rng):
        pts = rng.uniform(-3, 5, size=(200, 2))
        center, seg = bounding_segment_far_center(pts)
        rho, theta = to_polar(pts, center)
        assert np.all(seg.contains(rho, theta))

    def test_theorem1_preconditions(self, rng):
        """sin(a) > 5a/6 and r > 0.6 R (Section II's constants)."""
        for trial in range(10):
            local = np.random.default_rng(trial)
            pts = local.normal(size=(50, 2)) * local.uniform(0.1, 10)
            _center, seg = bounding_segment_far_center(pts)
            a = seg.theta_span
            assert np.sin(a) > 5 * a / 6
            assert seg.r_inner > 0.6 * seg.r_outer

    def test_single_point(self):
        center, seg = bounding_segment_far_center(np.array([[1.0, 2.0]]))
        rho, theta = to_polar(np.array([[1.0, 2.0]]), center)
        assert seg.contains(rho, theta)[0]

    def test_coincident_points(self):
        pts = np.tile([[3.0, 3.0]], (5, 1))
        _center, seg = bounding_segment_far_center(pts)
        assert seg.r_outer > seg.r_inner


class TestStandaloneBuilder:
    @pytest.mark.parametrize("degree", [4, 2])
    def test_builds_valid_tree(self, rng, degree):
        pts = rng.normal(size=(150, 2))
        result = build_bisection_tree(pts, 0, degree)
        result.tree.validate(max_out_degree=degree)

    def test_constant_factor_vs_exact(self):
        """Theorem 1: radius <= factor * OPT on exhaustively solved inputs."""
        from repro.baselines.exact import optimal_radius
        from repro.core.bounds import bisection_constant_factor

        for seed in range(12):
            local = np.random.default_rng(seed)
            pts = local.uniform(-1, 1, size=(6, 2))
            for degree in (4, 2):
                built = build_bisection_tree(pts, 0, degree).radius
                opt = optimal_radius(pts, 0, degree)
                factor = bisection_constant_factor(degree)
                assert built <= factor * opt + 1e-9, (seed, degree)

    def test_3d_standalone(self, rng):
        pts = rng.normal(size=(100, 3))
        result = build_bisection_tree(pts, 0, 8)
        result.tree.validate(max_out_degree=8)

    def test_source_only(self):
        result = build_bisection_tree(np.zeros((1, 2)), 0, 4)
        assert result.tree.n == 1

    def test_all_coincident_3d(self):
        pts = np.ones((20, 3))
        result = build_bisection_tree(pts, 0, 2)
        result.tree.validate(max_out_degree=2)
        assert result.tree.radius() == 0.0

    @given(st.integers(0, 10_000), st.integers(2, 30))
    @settings(max_examples=40, deadline=None)
    def test_property_valid_for_random_clouds(self, seed, n):
        local = np.random.default_rng(seed)
        pts = local.normal(size=(n, 2)) * local.uniform(0.01, 100)
        for degree in (4, 2):
            result = build_bisection_tree(pts, 0, degree)
            result.tree.validate(max_out_degree=degree)
