"""Tests for the parallel experiment engine (repro.experiments.parallel).

The load-bearing guarantee: serial and process backends produce
identical :class:`TrialRecord` streams, in trial order, for the same
seed — identical in every field except ``seconds`` (wall-clock time,
measured per worker). Most tests force :class:`ProcessExecutor`
directly so real subprocesses (and real pickling) are exercised even on
single-CPU hosts, where :func:`make_executor` would fall back to serial.
"""

import dataclasses

import pytest

from repro.experiments.campaign import Campaign, ExperimentSpec
from repro.experiments.parallel import (
    ENGINES,
    ProcessExecutor,
    SerialExecutor,
    TrialError,
    TrialFailure,
    TrialTask,
    execute_trial,
    make_executor,
    process_unavailable_reason,
    run_task,
)
from repro.experiments.runner import TrialRecord, run_trials


def strip_timing(records):
    """Records with the wall-clock field zeroed — the deterministic part."""
    return [dataclasses.replace(r, seconds=0.0) for r in records]


class TestExecutors:
    def test_make_executor_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            make_executor("threads")

    def test_engine_names(self):
        assert set(ENGINES) == {"auto", "serial", "process"}
        with make_executor("serial") as ex:
            assert isinstance(ex, SerialExecutor)

    def test_process_falls_back_gracefully(self):
        # Whatever the host, engine="process" must hand back a working
        # executor; when it degrades, the reason is recorded.
        with make_executor("process", max_workers=2) as ex:
            if isinstance(ex, SerialExecutor):
                assert ex.fallback_reason
                assert ex.fallback_reason == process_unavailable_reason()
            else:
                assert ex.max_workers == 2

    def test_auto_resolves(self):
        with make_executor("auto") as ex:
            assert ex.name in ("serial", "process")

    def test_process_executor_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessExecutor(max_workers=-1)

    def test_results_come_back_in_task_order(self):
        # Mixed sizes so completion order differs from task order under
        # real parallelism.
        tasks = [TrialTask(n, 6, 2, seed=10 + i) for i, n in
                 enumerate((400, 50, 300, 60))]
        with ProcessExecutor(max_workers=2) as ex:
            outcomes = ex.map(tasks)
        assert [o.n for o in outcomes] == [400, 50, 300, 60]
        assert [o.delay for o in outcomes] == [
            execute_trial(t).delay for t in tasks
        ]


class TestDeterminism:
    @pytest.mark.parametrize("n,trials", [(60, 3), (200, 4)])
    def test_serial_and_process_records_identical(self, n, trials):
        serial = run_trials(n, 6, trials=trials, seed=9, engine="serial")
        process = run_trials(
            n, 6, trials=trials, seed=9, engine="process", max_workers=2
        )
        assert strip_timing(serial) == strip_timing(process)

    def test_forced_subprocesses_match_serial(self):
        # Bypass the single-CPU fallback: genuine workers, genuine
        # pickling of TrialTask and TrialRecord.
        tasks = [TrialTask(150, 2, 2, seed=3 + t) for t in range(4)]
        with ProcessExecutor(max_workers=2) as ex:
            from_pool = ex.map(tasks)
        assert all(isinstance(r, TrialRecord) for r in from_pool)
        serial = run_trials(150, 2, trials=4, seed=3, engine="serial")
        assert strip_timing(serial) == strip_timing(from_pool)

    def test_3d_trials_through_engine(self):
        serial = run_trials(100, 10, trials=2, dim=3, seed=1)
        tasks = [TrialTask(100, 10, 3, seed=1 + t) for t in range(2)]
        with ProcessExecutor(max_workers=2) as ex:
            from_pool = ex.map(tasks)
        assert strip_timing(serial) == strip_timing(from_pool)


class TestFailureHandling:
    def test_serial_failure_recorded_and_reraised(self):
        # max_out_degree=1 fails deterministically inside the build.
        with pytest.raises(TrialError) as info:
            run_trials(40, 1, trials=3, seed=11, engine="serial")
        err = info.value
        assert len(err.failures) == 3
        assert err.completed == []
        assert [f.task.seed for f in err.failures] == [11, 12, 13]
        assert "seed=11" in str(err)
        assert "max_out_degree" in err.failures[0].error

    def test_process_failure_crosses_the_pickle_boundary(self):
        tasks = [TrialTask(40, 1, 2, seed=5)]
        with ProcessExecutor(max_workers=2) as ex:
            (outcome,) = ex.map(tasks)
        assert isinstance(outcome, TrialFailure)
        assert outcome.error_type == "ValueError"
        assert outcome.task.seed == 5

    def test_partial_failure_keeps_successes(self, monkeypatch):
        # The trial worker dispatches through repro.build, so the fault
        # is injected at the facade level.
        import repro.experiments.parallel as parallel_mod

        real_build = parallel_mod.build

        def flaky(points, source, spec, **kw):
            if len(points) == 77:  # poison one specific task
                raise RuntimeError("degenerate draw")
            return real_build(points, source, spec, **kw)

        monkeypatch.setattr(parallel_mod, "build", flaky)
        tasks = [TrialTask(n, 6, 2, seed=i) for i, n in
                 enumerate((50, 77, 60))]
        outcomes = [run_task(t) for t in tasks]
        assert isinstance(outcomes[0], TrialRecord)
        assert isinstance(outcomes[1], TrialFailure)
        assert isinstance(outcomes[2], TrialRecord)
        assert outcomes[1].task.seed == 1
        err = TrialError(
            [o for o in outcomes if isinstance(o, TrialFailure)],
            [o for o in outcomes if isinstance(o, TrialRecord)],
        )
        assert len(err.completed) == 2
        assert "degenerate draw" in str(err)

    def test_run_trials_still_validates_trials(self):
        with pytest.raises(ValueError, match="trial"):
            run_trials(10, 6, trials=0)


def small_spec(trials=3, name="engine", degrees=(6,)):
    return ExperimentSpec(
        name=name, sizes=(50, 100), degrees=degrees, trials=trials, seed=5
    )


class TestCampaignEngine:
    def test_process_campaign_matches_serial(self, tmp_path):
        serial_rows = Campaign(small_spec(name="s"), tmp_path).run(
            engine="serial"
        )
        process_rows = Campaign(small_spec(name="p"), tmp_path).run(
            engine="process", max_workers=2
        )
        assert [
            dataclasses.replace(r, seconds=0.0) for r in serial_rows
        ] == [dataclasses.replace(r, seconds=0.0) for r in process_rows]

    def test_resume_after_interrupt_reproduces_summary(self, tmp_path):
        # Phase 1: an "interrupted" campaign completed only 1 trial.
        Campaign(small_spec(trials=1, name="r"), tmp_path).run()
        # Phase 2: resume to 3 trials, through a forced process pool so
        # trials can genuinely complete out of order.
        resumed = Campaign(small_spec(trials=3, name="r"), tmp_path)
        with ProcessExecutor(max_workers=2) as ex:
            for n, degree in resumed.spec.configurations():
                resumed._run_config(ex, n, degree, [])
        rows = resumed.run()  # all checkpointed: aggregates + summary
        clean = Campaign(small_spec(trials=3, name="c"), tmp_path)
        clean_rows = clean.run()
        assert [
            dataclasses.replace(r, seconds=0.0) for r in rows
        ] == [dataclasses.replace(r, seconds=0.0) for r in clean_rows]
        assert [
            dataclasses.replace(r, seconds=0.0)
            for r in resumed.summary_rows()
        ] == [
            dataclasses.replace(r, seconds=0.0)
            for r in clean.summary_rows()
        ]

    def test_failing_config_reported_at_end(self, tmp_path):
        # degrees=(1, 6): the degree-1 config fails in the build, the
        # degree-6 config must still run and checkpoint fully.
        spec = ExperimentSpec(
            name="f", sizes=(50,), degrees=(1, 6), trials=2, seed=0
        )
        campaign = Campaign(spec, tmp_path)
        with pytest.raises(TrialError) as info:
            campaign.run()
        assert campaign.completed_trials(50, 6) == 2
        assert campaign.completed_trials(50, 1) == 0
        assert len(info.value.completed) == 1  # the degree-6 aggregate
