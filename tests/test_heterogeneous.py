"""Tests for the mixed-budget (heterogeneous) builder."""

import numpy as np
import pytest

from repro.core.heterogeneous import build_heterogeneous_tree
from repro.workloads.generators import unit_disk


def mixed_budgets(n, seed, p_leaf=0.3, p_one=0.1):
    rng = np.random.default_rng(seed)
    budgets = rng.choice(
        [0, 1, 2, 4, 8],
        size=n,
        p=[p_leaf - p_one, p_one, 0.3, 0.2, 0.5 - p_leaf],
    )
    budgets[0] = 4  # the source must root the backbone
    return budgets


class TestBasics:
    def test_valid_tree_with_mixed_population(self):
        n = 800
        points = unit_disk(n, seed=1)
        budgets = mixed_budgets(n, seed=1)
        result = build_heterogeneous_tree(points, budgets)
        tree = result.tree
        tree.validate()
        assert np.all(tree.out_degrees() <= budgets)

    def test_leaf_only_hosts_are_leaves(self):
        n = 500
        points = unit_disk(n, seed=2)
        budgets = mixed_budgets(n, seed=2)
        result = build_heterogeneous_tree(points, budgets)
        degrees = result.tree.out_degrees()
        leaves = np.flatnonzero(budgets < 2)
        assert np.all(degrees[leaves] == 0)

    def test_uniform_budgets_reduce_to_binary_build(self):
        from repro.core.builder import build_polar_grid_tree

        points = unit_disk(400, seed=3)
        uniform = np.full(400, 2, dtype=np.int64)
        het = build_heterogeneous_tree(points, uniform)
        plain = build_polar_grid_tree(points, 0, 2)
        assert np.array_equal(het.tree.parent, plain.tree.parent)

    def test_source_must_forward(self):
        points = unit_disk(10, seed=4)
        budgets = np.full(10, 4, dtype=np.int64)
        budgets[0] = 1
        with pytest.raises(ValueError, match="source"):
            build_heterogeneous_tree(points, budgets)

    def test_insufficient_capacity_raises(self):
        points = unit_disk(20, seed=5)
        budgets = np.zeros(20, dtype=np.int64)
        budgets[0] = 2  # two backbone slots... and 19 leaves
        with pytest.raises(ValueError, match="spare slots"):
            build_heterogeneous_tree(points, budgets)

    def test_shape_validation(self):
        points = unit_disk(10, seed=6)
        with pytest.raises(ValueError, match="shape"):
            build_heterogeneous_tree(points, np.zeros(5))
        with pytest.raises(ValueError, match="negative"):
            build_heterogeneous_tree(points, np.full(10, -1))


class TestQuality:
    def test_radius_reasonable_despite_leaves(self):
        n = 3_000
        points = unit_disk(n, seed=7)
        budgets = mixed_budgets(n, seed=7)
        result = build_heterogeneous_tree(points, budgets)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        # Binary backbone plus one greedy leaf hop: modest inflation.
        assert result.radius <= 2.2 * farthest

    def test_backbone_metrics_exposed(self):
        points = unit_disk(600, seed=8)
        budgets = mixed_budgets(600, seed=8)
        result = build_heterogeneous_tree(points, budgets)
        assert result.rings >= 1
        assert result.core_delay is not None

    def test_leaves_pay_at_most_one_extra_hop(self):
        n = 1_000
        points = unit_disk(n, seed=9)
        budgets = mixed_budgets(n, seed=9)
        result = build_heterogeneous_tree(points, budgets)
        tree = result.tree
        delays = tree.root_delays()
        leaves = np.flatnonzero(budgets < 2)
        for leaf in leaves[:50]:
            adopter = int(tree.parent[leaf])
            hop = float(np.linalg.norm(points[leaf] - points[adopter]))
            assert delays[leaf] == pytest.approx(delays[adopter] + hop)
