"""Mutation smoke tests: prove the oracle actually catches bugs.

A verification layer that never fires is indistinguishable from one that
works. Here we deliberately break the two central rules of Algorithm
Polar_Grid — the Section III-B representative choice and the out-degree
cap — via monkeypatching, and assert that the structural oracle and the
differential harness both flag the sabotaged builds. If either mutation
survives, the safety net has a hole.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.builder as builder_mod
from repro.analysis.oracle import check_build_result
from repro.core.builder import build_polar_grid_tree
from repro.testing import run_differential
from repro.workloads.generators import unit_disk

POINTS = unit_disk(300, seed=71)
D_MAX = 6


@pytest.fixture()
def worst_representative(monkeypatch):
    """Invert the within-cell ordering: every cell picks its *worst*
    candidate under the configured rule."""

    def sabotaged(representative_rule, gid, inner_dist, rho):
        if representative_rule == "inner-anchor":
            return np.lexsort((-inner_dist, gid))
        return np.lexsort((-rho, gid))

    monkeypatch.setattr(builder_mod, "representative_order", sabotaged)


@pytest.fixture()
def degree_cap_breaker(monkeypatch):
    """Wrap the core-network wiring: after the honest wiring, pile extra
    leaves onto the busiest node until it exceeds the fan-out budget.

    The sabotage lives on the reference wiring path, so the builds are
    pinned to the ``reference`` backend (the vectorised backends are
    proven equivalent to it differentially in ``test_backends.py``).
    """
    monkeypatch.setenv("REPRO_BUILD_BACKEND", "reference")
    real = builder_mod.wire_cells

    def sabotaged(grid, source, groups, rho_list, t_axes, parent, binary, **kw):
        reps = real(
            grid, source, groups, rho_list, t_axes, parent, binary, **kw
        )
        n = parent.shape[0]
        degrees = np.bincount(parent, minlength=n)
        degrees[source] -= 1
        hub = int(np.argmax(degrees))
        is_leaf = np.isin(np.arange(n), parent, invert=True)
        victims = np.flatnonzero(is_leaf & (np.arange(n) != hub))
        for victim in victims[: D_MAX + 3 - int(degrees[hub])]:
            parent[victim] = hub
        return reps

    monkeypatch.setattr(builder_mod, "wire_cells", sabotaged)


def test_baseline_is_clean():
    # The smoke test is only meaningful if the unmutated build passes.
    report = check_build_result(build_polar_grid_tree(POINTS, 0, D_MAX))
    assert report.ok, report.render()


def test_oracle_catches_broken_representative_rule(worst_representative):
    result = build_polar_grid_tree(POINTS, 0, D_MAX)
    report = check_build_result(result)
    assert not report.ok
    assert "REP_RULE" in {v.code for v in report.violations}


def test_differential_harness_catches_broken_representative_rule(
    worst_representative,
):
    report = run_differential(POINTS, 0, D_MAX, metamorphic=False)
    assert not report.ok
    assert "REP_RULE" in {v.code for v in report.violations}


def test_oracle_catches_degree_cap_violation(degree_cap_breaker):
    result = build_polar_grid_tree(POINTS, 0, D_MAX)
    report = check_build_result(result)
    assert not report.ok
    assert "DEGREE_CAP" in {v.code for v in report.violations}


def test_differential_harness_catches_degree_cap_violation(
    degree_cap_breaker,
):
    report = run_differential(POINTS, 0, D_MAX, metamorphic=False)
    assert not report.ok
    assert "DEGREE_CAP" in {v.code for v in report.violations}


def test_fuzz_check_catches_mutations(worst_representative):
    # The fuzzer's per-instance check sits on the same oracle; a seeded
    # mutation must surface there too (this is what turns a green fuzz
    # run into evidence rather than absence of assertions).
    from repro.testing.fuzz import check_instance

    violations = check_instance(POINTS, 0, D_MAX, metamorphic=False)
    assert any(v["code"] == "REP_RULE" for v in violations)
