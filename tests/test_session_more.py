"""Additional MulticastSession coverage: per-algorithm behaviour."""

import numpy as np
import pytest

from repro.overlay.host import Host
from repro.overlay.session import MulticastSession
from repro.workloads.generators import unit_disk


def make_hosts(n=60, fanout=6, seed=90, proc=0.0):
    points = unit_disk(n, seed=seed)
    return [
        Host(
            name=f"h{i}" if i else "src",
            coords=tuple(points[i]),
            max_fanout=fanout,
            processing_delay=proc,
        )
        for i in range(n)
    ]


class TestBuildKwargs:
    def test_polar_grid_kwargs_forwarded(self):
        session = MulticastSession(make_hosts(), algorithm="polar-grid")
        session.build(k=3)
        assert session.last_build.rings == 3

    def test_last_build_exposed_for_grid(self):
        session = MulticastSession(make_hosts(), algorithm="polar-grid")
        session.build()
        assert session.last_build is not None
        assert session.last_build.upper_bound > session.metrics().radius

    def test_last_build_wrapped_for_baselines(self):
        # Baselines now dispatch through repro.build too, so last_build
        # is a uniform BuildResult; the grid-only columns stay None.
        session = MulticastSession(make_hosts(), algorithm="compact-tree")
        session.build()
        assert session.last_build.builder == "compact-tree"
        assert session.last_build.rings is None
        assert session.last_build.tree is session.tree

    def test_rebuild_replaces_tree(self):
        session = MulticastSession(make_hosts(), algorithm="random")
        a = session.build(seed=1).parent.copy()
        b = session.build(seed=2).parent.copy()
        assert not np.array_equal(a, b)


class TestParentsAndPoints:
    def test_parent_of_is_consistent_with_tree(self):
        session = MulticastSession(make_hosts(40))
        session.build()
        tree = session.tree
        for i, host in enumerate(session.hosts):
            expected = (
                None
                if i == tree.root
                else session.hosts[int(tree.parent[i])].name
            )
            assert session.parent_of(host.name) == expected

    def test_points_matrix_matches_hosts(self):
        session = MulticastSession(make_hosts(10))
        pts = session.points()
        for i, host in enumerate(session.hosts):
            assert tuple(pts[i]) == host.coords

    def test_index_of_unknown(self):
        session = MulticastSession(make_hosts(5))
        with pytest.raises(ValueError, match="unknown host"):
            session.index_of("nope")


class TestSimulationDetails:
    def test_serialization_delay_propagates(self):
        session = MulticastSession(make_hosts(50))
        session.build()
        fast = session.simulate(serialization_delay=0.0)
        slow = session.simulate(serialization_delay=0.01)
        assert slow.completion_time > fast.completion_time

    def test_processing_delays_per_host(self):
        hosts = make_hosts(30, proc=0.05)
        session = MulticastSession(hosts)
        session.build()
        replay = session.simulate()
        # Any receiver two hops deep pays at least one processing stop.
        depths = session.tree.depths()
        deep = np.flatnonzero(depths >= 2)
        delays = session.tree.root_delays()
        for node in deep[:10]:
            assert replay.receive_time[node] > delays[node]

    def test_heterogeneous_polar_grid_metrics(self):
        points = unit_disk(50, seed=91)
        hosts = [
            Host(
                name=f"h{i}" if i else "src",
                coords=tuple(points[i]),
                max_fanout=(0 if (i % 4 == 1) else 4),
            )
            for i in range(50)
        ]
        session = MulticastSession(hosts, algorithm="polar-grid")
        session.build()
        metrics = session.metrics()
        assert metrics.radius > 0
        # last_build carries the backbone's grid info.
        assert session.last_build.rings >= 1

    def test_departures_until_tiny(self):
        session = MulticastSession(make_hosts(12, fanout=4))
        session.build()
        for name in [f"h{i}" for i in range(1, 10)]:
            session.handle_departure(name)
        assert session.n == 3
        session.tree.validate(max_out_degree=4)
