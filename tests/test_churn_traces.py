"""Tests for the churn-trace generator and replay."""

import numpy as np
import pytest

from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.protocol import DistributedJoinProtocol
from repro.workloads.churn import ChurnEvent, generate_churn_trace, replay_trace


class TestGeneration:
    def test_sorted_and_well_formed(self):
        events = generate_churn_trace(
            duration=50.0, arrival_rate=2.0, mean_session=5.0, seed=1
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        for e in events:
            assert 0.0 <= e.time < 50.0
            if e.action == "join":
                assert e.coords is not None and len(e.coords) == 2
            else:
                assert e.action == "leave"

    def test_every_leave_has_prior_join(self):
        events = generate_churn_trace(
            duration=40.0, arrival_rate=3.0, mean_session=4.0, seed=2
        )
        seen = set()
        for e in events:
            if e.action == "join":
                assert e.name not in seen
                seen.add(e.name)
            else:
                assert e.name in seen

    def test_arrival_rate_roughly_respected(self):
        events = generate_churn_trace(
            duration=200.0, arrival_rate=1.5, mean_session=3.0, seed=3
        )
        joins = sum(1 for e in events if e.action == "join")
        assert 240 < joins < 360  # 300 expected, Poisson spread

    def test_mean_session_roughly_respected(self):
        events = generate_churn_trace(
            duration=2_000.0,
            arrival_rate=0.5,
            mean_session=8.0,
            session_sigma=0.5,
            seed=4,
        )
        joins = {e.name: e.time for e in events if e.action == "join"}
        sessions = [
            e.time - joins[e.name] for e in events if e.action == "leave"
        ]
        # Truncation (sessions outliving the trace) biases downward a bit.
        assert 5.0 < np.mean(sessions) < 9.5

    def test_reproducible(self):
        a = generate_churn_trace(30.0, 2.0, 4.0, seed=5)
        b = generate_churn_trace(30.0, 2.0, 4.0, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            generate_churn_trace(0.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="sigma"):
            generate_churn_trace(1.0, 1.0, 1.0, session_sigma=-1.0)

    def test_dimension_parameter(self):
        events = generate_churn_trace(
            20.0, 2.0, 4.0, dim=3, seed=6
        )
        join = next(e for e in events if e.action == "join")
        assert len(join.coords) == 3


class TestReplay:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DynamicOverlay((0.0, 0.0), 4, rebuild_threshold=0.3),
            lambda: DistributedJoinProtocol((0.0, 0.0), 4),
        ],
        ids=["dynamic", "protocol"],
    )
    def test_both_layers_survive_a_trace(self, factory):
        events = generate_churn_trace(
            duration=60.0, arrival_rate=2.0, mean_session=6.0, seed=7
        )
        overlay = factory()
        stats = replay_trace(overlay, events)
        assert stats["joins"] > stats["leaves"] >= 0
        assert stats["peak"] >= 1
        tree = overlay.tree()
        tree.validate(max_out_degree=4)
        assert tree.n == 1 + stats["joins"] - stats["leaves"]

    def test_unknown_action_rejected(self):
        overlay = DynamicOverlay((0.0, 0.0), 4)
        with pytest.raises(ValueError, match="action"):
            replay_trace(
                overlay, [ChurnEvent(time=0.0, action="dance", name="x")]
            )


class TestNetworkxInterop:
    def test_to_networkx_structure(self):
        import networkx as nx

        from repro.core.builder import build_polar_grid_tree
        from repro.workloads.generators import unit_disk

        tree = build_polar_grid_tree(unit_disk(120, seed=8), 0, 6).tree
        graph = tree.to_networkx()
        assert graph.number_of_nodes() == 120
        assert graph.number_of_edges() == 119
        assert nx.is_arborescence(graph)
        # Weighted depth in networkx equals our root delays.
        lengths = nx.single_source_dijkstra_path_length(
            graph, tree.root, weight="weight"
        )
        delays = tree.root_delays()
        for node, length in lengths.items():
            assert length == pytest.approx(delays[node])
