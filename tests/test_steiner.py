"""Tests for the Steiner/MST baseline (repro.baselines.steiner)."""

import numpy as np
import pytest

import repro
from repro import costmodel as cm
from repro.analysis.oracle import check_tree
from repro.baselines import steiner_tree
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import unit_disk


class TestStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 50, 300])
    def test_valid_degree_capped_tree(self, n):
        points = unit_disk(n, seed=n)
        tree = steiner_tree(points, 0, 4)
        tree.validate(max_out_degree=4)
        assert check_tree(tree, d_max=4).ok

    def test_degree_cap_respected_even_when_tight(self):
        points = unit_disk(120, seed=5)
        tree = steiner_tree(points, 0, 2, knn=3)
        assert tree.max_out_degree() <= 2

    def test_deterministic(self):
        points = unit_disk(200, seed=6)
        a = steiner_tree(points, 0, 4)
        b = steiner_tree(points, 0, 4)
        assert np.array_equal(a.parent, b.parent)

    def test_sparse_knn_still_spans(self):
        # knn=1 forces the component-bridging fallback.
        points = unit_disk(60, seed=7)
        tree = steiner_tree(points, 0, 4, knn=1)
        assert check_tree(tree, d_max=4).ok

    def test_validation(self):
        points = unit_disk(10, seed=0)
        with pytest.raises(ValueError):
            steiner_tree(points, 99, 4)
        with pytest.raises(ValueError):
            steiner_tree(points, 0, 1)
        with pytest.raises(ValueError):
            steiner_tree(points, 0, 4, knn=0)


class TestCongestedRegime:
    def test_lower_stress_than_polar_grid(self):
        # The whole point of the baseline: at the same budget its hosts
        # run cooler (smaller max fan-out) at the price of radius.
        points = unit_disk(500, seed=9)
        st = steiner_tree(points, 0, 6)
        pg = build_polar_grid_tree(points, 0, 6).tree
        assert cm.hottest_uplink(st, 0.8) < cm.hottest_uplink(pg, 0.8)

    def test_validates_under_scaled_cost_model(self):
        points = unit_disk(200, seed=10)
        tree = steiner_tree(points, 0, 6)
        report = check_tree(
            tree,
            d_max=6,
            cost_model="congestion",
            utilization=cm.link_utilization(tree, 0.8),
        )
        assert report.ok


class TestRegistry:
    def test_facade_build(self):
        points = unit_disk(80, seed=11)
        result = repro.build(points, 0, "steiner", max_out_degree=4, knn=6)
        assert result.max_out_degree == 4
        assert result.tree.n == 80
        assert "steiner" in repro.builder_names()
