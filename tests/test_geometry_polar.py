"""Unit + property tests for polar and hyperspherical transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polar import (
    TWO_PI,
    SphericalTransform,
    angles_to_unit_vectors,
    from_polar,
    normalize_angle,
    to_polar,
)


class TestNormalizeAngle:
    def test_wraps_negative(self):
        assert np.isclose(normalize_angle(-np.pi / 2), 3 * np.pi / 2)

    def test_wraps_large(self):
        assert np.isclose(normalize_angle(5 * np.pi), np.pi)

    def test_zero_stays_zero(self):
        assert normalize_angle(0.0) == 0.0

    def test_tiny_negative_folds_to_zero(self):
        out = normalize_angle(-1e-18)
        assert 0.0 <= out < TWO_PI

    @given(st.floats(-1e6, 1e6))
    def test_always_in_range(self, theta):
        out = float(normalize_angle(theta))
        assert 0.0 <= out < TWO_PI


class TestPolarRoundtrip:
    def test_known_values(self):
        pts = np.array([[1.0, 0.0], [0.0, 2.0], [-3.0, 0.0]])
        rho, theta = to_polar(pts, (0.0, 0.0))
        assert np.allclose(rho, [1.0, 2.0, 3.0])
        assert np.allclose(theta, [0.0, np.pi / 2, np.pi])

    def test_roundtrip(self, rng):
        pts = rng.normal(size=(50, 2))
        center = rng.normal(size=2)
        rho, theta = to_polar(pts, center)
        back = from_polar(rho, theta, center)
        assert np.allclose(back, pts, atol=1e-12)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            to_polar(np.zeros((2, 3)), (0, 0, 0))

    def test_angles_to_unit_vectors(self):
        v = angles_to_unit_vectors([0.0, np.pi / 2])
        assert np.allclose(v, [[1, 0], [0, 1]], atol=1e-12)


class TestSphericalTransform2D:
    def test_matches_plain_polar(self, rng):
        pts = rng.normal(size=(30, 2))
        tr = SphericalTransform(2)
        rho, t = tr.transform(pts, np.zeros(2))
        rho2, theta = to_polar(pts, (0.0, 0.0))
        assert np.allclose(rho, rho2)
        assert np.allclose(t[:, 0] * TWO_PI, theta, atol=1e-9)

    def test_direction_roundtrip(self, rng):
        tr = SphericalTransform(2)
        t = rng.random((20, 1))
        vec = tr.direction(t)
        rho, t2 = tr.transform(vec, np.zeros(2))
        assert np.allclose(rho, 1.0)
        assert np.allclose(t2, t, atol=1e-9)


@pytest.mark.parametrize("dim", [3, 4, 5])
class TestSphericalTransformND:
    def test_radius_is_euclidean(self, dim, rng):
        pts = rng.normal(size=(40, dim))
        tr = SphericalTransform(dim)
        rho, _t = tr.transform(pts, np.zeros(dim))
        assert np.allclose(rho, np.linalg.norm(pts, axis=1))

    def test_t_in_unit_box(self, dim, rng):
        pts = rng.normal(size=(200, dim))
        tr = SphericalTransform(dim)
        _rho, t = tr.transform(pts, np.zeros(dim))
        assert t.shape == (200, dim - 1)
        assert np.all(t >= 0.0)
        assert np.all(t < 1.0)

    def test_direction_inverts_transform(self, dim, rng):
        tr = SphericalTransform(dim)
        pts = rng.normal(size=(50, dim))
        rho, t = tr.transform(pts, np.zeros(dim))
        rebuilt = tr.direction(t) * rho[:, None]
        assert np.allclose(rebuilt, pts, atol=1e-6)

    def test_uniform_directions_give_uniform_t(self, dim, rng):
        """Key invariant: dyadic t-boxes have equal sphere measure."""
        vecs = rng.normal(size=(40_000, dim))
        tr = SphericalTransform(dim)
        _rho, t = tr.transform(vecs, np.zeros(dim))
        for axis in range(dim - 1):
            hist, _ = np.histogram(t[:, axis], bins=8, range=(0, 1))
            # Each bin should hold ~5000 +- noise.
            assert hist.min() > 4400, (axis, hist)
            assert hist.max() < 5600, (axis, hist)

    def test_t_axes_are_independent_enough(self, dim, rng):
        """Joint uniformity over a coarse 2-D marginal grid."""
        vecs = rng.normal(size=(40_000, dim))
        tr = SphericalTransform(dim)
        _rho, t = tr.transform(vecs, np.zeros(dim))
        if dim - 1 < 2:
            pytest.skip("needs two angular axes")
        joint, _, _ = np.histogram2d(
            t[:, 0], t[:, 1], bins=4, range=[[0, 1], [0, 1]]
        )
        assert joint.min() > 2000
        assert joint.max() < 3000


class TestSphericalTransformEdges:
    def test_requires_dim_at_least_2(self):
        with pytest.raises(ValueError, match="dim >= 2"):
            SphericalTransform(1)

    def test_point_at_center(self):
        tr = SphericalTransform(3)
        rho, t = tr.transform(np.zeros((1, 3)), np.zeros(3))
        assert rho[0] == 0.0
        assert np.all(np.isfinite(t))

    def test_wrong_dim_points_rejected(self):
        tr = SphericalTransform(3)
        with pytest.raises(ValueError, match="3-dimensional"):
            tr.transform(np.zeros((2, 2)), np.zeros(3))

    def test_direction_shape_check(self):
        tr = SphericalTransform(3)
        with pytest.raises(ValueError, match="shape"):
            tr.direction(np.zeros((2, 3)))

    @settings(max_examples=25)
    @given(st.integers(2, 6))
    def test_angular_axes_count(self, dim):
        assert SphericalTransform(dim).angular_axes == dim - 1
