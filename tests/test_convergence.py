"""Tests for convergence-rate estimation."""

import numpy as np
import pytest

from repro.analysis.convergence import fit_power_law, measure_convergence


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        sizes = np.array([100, 1_000, 10_000, 100_000])
        values = 3.0 * sizes ** (-0.5)
        fit = fit_power_law(sizes, values)
        assert fit.beta == pytest.approx(0.5, abs=1e-9)
        assert np.exp(fit.log_C) == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10, 100, 1000], [1.0, 0.1, 0.01])
        assert fit.predict(10_000) == pytest.approx(0.001, rel=1e-6)

    def test_noise_lowers_r_squared(self, rng):
        sizes = np.geomspace(100, 100_000, 8)
        clean = 2.0 * sizes ** (-0.4)
        noisy = clean * rng.lognormal(0, 0.3, size=8)
        fit = fit_power_law(sizes, noisy)
        assert 0.2 < fit.beta < 0.6
        assert fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="3 matching"):
            fit_power_law([10, 100], [1.0, 0.1])
        with pytest.raises(ValueError, match="positive"):
            fit_power_law([10, 100, 1000], [1.0, -0.1, 0.01])


class TestMeasureConvergence:
    def test_beats_the_analytic_rate(self):
        """The headline: empirical beta clearly above the bound's 1/4."""
        fit = measure_convergence(
            sizes=(500, 2_000, 8_000), trials=3, seed=1
        )
        assert fit.beta > 0.3
        assert fit.r_squared > 0.9

    def test_degree2_also_converges(self):
        fit = measure_convergence(
            sizes=(500, 2_000, 8_000), max_out_degree=2, trials=3, seed=2
        )
        assert fit.beta > 0.3

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            measure_convergence(
                sizes=(500, 1_000, 2_000), trials=2, seed=3, limit=5.0
            )
